//! The TDD manager: backed unique table and constructors.

use std::collections::BTreeMap;

use qits_num::{Cplx, Mat};
use qits_tensor::{Tensor, Var, VarSet};

use crate::cache::{CacheLookup, CacheSizes, OpCaches, RenameId, SumId, DEFAULT_CACHE_CAPACITY};
use crate::cancel::CancelToken;
use crate::cnum::{CIdx, ComplexTable};
use crate::gc::{GcPolicy, RootRegistry};
use crate::node::{Edge, Node, NodeId, TERMINAL};
use crate::order::VarOrder;
use crate::stats::ManagerStats;
use crate::table::UniqueTable;

/// Default hard bound on allocated node slots: the whole `u32` index space.
const DEFAULT_NODE_CAPACITY: usize = u32::MAX as usize;

/// Panic payload thrown by [`TddManager::make_node`] when the node store is
/// at its configured capacity (see [`TddManager::set_node_capacity`]) and
/// garbage collection freed nothing.
///
/// Exhaustion is not a recoverable condition *inside* a recursive diagram
/// operation — there is no partial result to return — so it unwinds as a
/// typed panic payload that session facades (`qits`'s `Engine`) catch at
/// the operation boundary and convert into their fallible API's error; a
/// pool worker hitting it fails only its own job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaExhausted {
    /// Slots allocated when the table filled (terminal included).
    pub allocated: usize,
    /// The configured bound that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for ArenaExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node arena exhausted: {} slots allocated of capacity {}",
            self.allocated, self.capacity
        )
    }
}

/// Owns every node and weight of a family of TDDs and implements all
/// operations on them.
///
/// All edges ([`Edge`]) are only meaningful relative to the manager that
/// created them. The manager enforces the two invariants that give TDDs
/// canonicity:
///
/// 1. **Reduction** — no node has identical low and high edges, and the zero
///    tensor is always the canonical zero edge;
/// 2. **Normalisation** — the largest-magnitude outgoing weight of each
///    node (ties broken towards the low branch) is exactly 1, with the
///    common factor pushed to the incoming edge. The pivot choice is
///    deliberately **scale-equivariant** — `pivot(λa, λb) = λ·pivot(a, b)`
///    — because every operation factors weights out before recursing
///    (cofactors multiply the root weight down, addition normalises by
///    its first operand's weight); a pivot that ranked absolute values
///    (say by `(|c|, re, im)`) would canonicalise the same tensor
///    differently along different construction routes. The flip side is
///    that on an exact magnitude tie the choice depends on which branch
///    holds which value, so re-grouping cofactors — which is what a
///    level swap does — can land on the other ex-aequo value; see
///    [`TddManager::swap_adjacent_levels`] for how reordering accounts
///    for that.
///
/// Nodes live in a **backed Robin Hood unique table** (see
/// the private `table` module) under generational handles, reclaimed by
/// **root-tracked garbage collection** (see [`crate::gc`]): edges
/// registered through [`TddManager::protect`] (or a [`crate::RootScope`])
/// survive a [`TddManager::collect`] **bit-identically** — collection
/// never moves a node — while everything unreachable from the root
/// registry is swept in place: its slot's generation is bumped (making
/// held handles detectably stale, never silently recycled) and the slot is
/// recycled for future nodes. Collection only ever runs when explicitly
/// invoked — with no [`GcPolicy`] installed (the default) the manager
/// behaves exactly like a grow-only arena.
///
/// Operation caches are **manager-owned** (see [`crate::cache`]) so
/// memoised results survive across top-level calls — the reuse repeated
/// image computations depend on — and they are size-bounded and
/// epoch-tagged. Entries even survive collections: a post-collection probe
/// re-validates an entry against its value's generation instead of
/// discarding the whole cache. [`TddManager::purge_stale`] evicts exactly
/// the dead-generation entries, and [`TddManager::clear_caches`] still
/// drops everything between phases if needed.
#[derive(Debug)]
pub struct TddManager {
    /// Node storage and hash-consing index in one structure.
    pub(crate) unique: UniqueTable,
    table: ComplexTable,
    pub(crate) caches: OpCaches,
    pub(crate) stats: ManagerStats,
    /// Protected edges: the GC's mark sources (see [`crate::gc`]).
    pub(crate) roots: RootRegistry,
    /// Automatic-collection policy; `None` disables [`TddManager::maybe_collect`].
    pub(crate) gc_policy: Option<GcPolicy>,
    /// Live nodes right after the last collection (watermark baseline).
    pub(crate) gc_floor: usize,
    /// Nodes interned since the last collection (policy interval counter).
    pub(crate) allocs_since_gc: u64,
    /// The global variable order (natural until an order is installed or
    /// the first sifting pass materialises one). Every structural
    /// comparison in the manager goes through this map.
    pub(crate) order: VarOrder,
    /// Live nodes right after the last sifting pass (growth baseline for
    /// [`ReorderPolicy::OnGrowth`](crate::ReorderPolicy)).
    pub(crate) reorder_baseline: usize,
    /// Safepoints polled since the last sifting pass (trigger counter for
    /// [`ReorderPolicy::EveryNSafepoints`](crate::ReorderPolicy)).
    pub(crate) safepoints_since_reorder: u64,
    /// Cooperative-cancellation flag checked at every GC safepoint;
    /// `None` (the default) makes safepoints cancellation-free.
    pub(crate) cancel_token: Option<CancelToken>,
}

impl Default for TddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TddManager {
    /// Creates an empty manager with the default weight tolerance.
    pub fn new() -> Self {
        Self::with_tolerance(qits_num::DEFAULT_TOLERANCE)
    }

    /// Creates an empty manager with a custom weight tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn with_tolerance(tol: f64) -> Self {
        TddManager {
            unique: UniqueTable::new(DEFAULT_NODE_CAPACITY),
            table: ComplexTable::with_tolerance(tol),
            caches: OpCaches::with_capacity(DEFAULT_CACHE_CAPACITY),
            stats: ManagerStats::default(),
            roots: RootRegistry::default(),
            gc_policy: None,
            gc_floor: 1,
            allocs_since_gc: 0,
            order: VarOrder::default(),
            reorder_baseline: 1,
            safepoints_since_reorder: 0,
            cancel_token: None,
        }
    }

    /// Creates an empty manager with every session knob applied at once:
    /// weight tolerance, operation-cache capacity (`None` keeps the
    /// default bound), and automatic-collection policy. This is the
    /// constructor session facades build on, so a configured manager is
    /// never observable in a half-initialised state.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn with_config(tol: f64, cache_capacity: Option<usize>, policy: Option<GcPolicy>) -> Self {
        let mut m = Self::with_tolerance(tol);
        if let Some(cap) = cache_capacity {
            m.set_cache_capacity(cap);
        }
        m.set_gc_policy(policy);
        m
    }

    /// Statistics accumulated so far, including the live counters of every
    /// operation cache and the unique table's probe/tombstone telemetry.
    pub fn stats(&self) -> ManagerStats {
        let mut s = self.stats;
        s.probe_hist = self.unique.probe_hist;
        s.tombstones = self.unique.tombstone_count();
        s.index_cells = self.unique.index_cells();
        s.tombstones_created = self.unique.tombstones_created;
        s.generation_bumps = self.unique.generation_bumps;
        s.unique_rebuilds = self.unique.unique_rebuilds;
        s.add_cache = *self.caches.add.stats();
        s.cont_cache = *self.caches.cont.stats();
        s.slice_cache = *self.caches.slice.stats();
        s.conj_cache = *self.caches.conj.stats();
        s.rename_cache = *self.caches.rename.stats();
        s
    }

    /// Node slots currently allocated (including the terminal and any
    /// dead-but-reusable slots on the free list).
    ///
    /// Collection never shrinks this — sweeps recycle slots in place — but
    /// it stops growing once the free list covers the churn: reclaimed
    /// slots are reused before new ones are allocated. The live occupancy
    /// is [`TddManager::arena_occupied`]; the live set of any particular
    /// diagram is [`TddManager::node_count`], and the rooted live set is
    /// [`TddManager::live_node_count`].
    pub fn arena_len(&self) -> usize {
        self.unique.allocated()
    }

    /// Non-terminal node slots currently holding a live node
    /// (allocated minus free).
    pub fn arena_occupied(&self) -> usize {
        self.unique.occupied()
    }

    /// Node slots reclaimed by sweeps and awaiting reuse.
    pub fn arena_free(&self) -> usize {
        self.unique.free_slots()
    }

    /// Whether `e` still points at the node it was created for.
    ///
    /// Collection never relocates nodes, so an edge is either **live**
    /// (bit-identical to the day it was built) or **stale** — its slot was
    /// swept and its generation bumped. Stale edges must not be passed to
    /// any operation; this is the check holders use after collecting
    /// without protecting something.
    #[inline]
    pub fn is_live(&self, e: Edge) -> bool {
        self.unique.is_live(e.node)
    }

    /// Hard bound on allocated node slots (terminal included). When the
    /// bound is hit and no swept slot is free, [`TddManager::make_node`]
    /// unwinds with an [`ArenaExhausted`] payload.
    pub fn node_capacity(&self) -> usize {
        self.unique.node_capacity()
    }

    /// Re-bounds the node store (does not free anything already allocated;
    /// values above the `u32` index space are clamped by allocation).
    pub fn set_node_capacity(&mut self, capacity: usize) {
        self.unique.set_node_capacity(capacity);
    }

    /// Installs (or, with `None`, clears) the cooperative-cancellation
    /// token polled at every GC safepoint. A tripped token makes the next
    /// [`TddManager::maybe_collect_at_safepoint`] unwind with an
    /// [`crate::OperationCancelled`] payload; see [`crate::cancel`].
    ///
    /// Tokens are per-job: a pool worker installs the job's token before
    /// running it and clears it afterwards so the next job cannot inherit
    /// a tripped flag.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel_token = token;
    }

    /// The installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel_token.as_ref()
    }

    /// Drops every operation cache (unique table and node store are kept).
    ///
    /// Useful between phases of a long run to bound memory; results built so
    /// far remain valid. Cache counters are cumulative and survive the
    /// clear.
    pub fn clear_caches(&mut self) {
        self.caches.clear();
    }

    /// Evicts exactly the operation-cache entries whose key or value names
    /// a swept (dead-generation) node, returning how many were dropped
    /// (also counted per-cache in [`crate::CacheStats::purged`]).
    ///
    /// The targeted alternative to [`TddManager::clear_caches`] after a
    /// collection: everything memoised about surviving diagrams is kept.
    pub fn purge_stale(&mut self) -> u64 {
        let unique = &self.unique;
        let live = |n: NodeId| unique.is_live(n);
        self.caches
            .add
            .retain_with(|k, v| live(k.0.node) && live(k.1.node) && live(v.node))
            + self
                .caches
                .cont
                .retain_with(|k, v| live(k.0) && live(k.1) && live(v.node))
            + self
                .caches
                .slice
                .retain_with(|k, v| live(k.0) && live(v.node))
            + self
                .caches
                .conj
                .retain_with(|k, v| live(*k) && live(v.node))
            + self
                .caches
                .rename
                .retain_with(|k, v| live(k.0) && live(v.node))
    }

    /// Re-bounds every operation cache to at most `capacity` entries.
    ///
    /// `0` disables operation caching entirely (every lookup misses and
    /// inserts are dropped) — results are identical either way, only the
    /// work to reach them changes; the equivalence tests rely on this.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.caches.set_capacity(capacity);
    }

    /// Live entry counts of every operation cache.
    pub fn cache_sizes(&self) -> CacheSizes {
        self.caches.sizes()
    }

    // ------------------------------------------------------------------
    // Generation-validated cache probes (the ops.rs lookup path).
    // ------------------------------------------------------------------

    /// Re-validation rule for a pre-collection cache entry: admissible iff
    /// no sweep is mid-flight (an unswept unmarked value could still die)
    /// and the cached value's node generation is current. Liveness of the
    /// value implies liveness of its whole subgraph — marking is
    /// transitive, so a value that survived a collection survived with all
    /// its descendants. Keys need no check: callers build them from edges
    /// they currently hold.
    #[inline]
    fn stale_value_admissible(&self, v: Edge) -> bool {
        !self.unique.sweep_in_progress() && self.unique.is_live(v.node)
    }

    #[inline]
    pub(crate) fn cache_get_add(&mut self, key: &(Edge, Edge)) -> Option<Edge> {
        match self.caches.add.probe(key) {
            CacheLookup::Hit(v) => Some(v),
            CacheLookup::Miss => None,
            CacheLookup::Stale(v) if self.stale_value_admissible(v) => {
                self.caches.add.admit(*key, v);
                Some(v)
            }
            CacheLookup::Stale(_) => {
                self.stats.stale_handle_hits += 1;
                self.caches.add.reject_stale();
                None
            }
        }
    }

    #[inline]
    pub(crate) fn cache_get_cont(&mut self, key: &(NodeId, NodeId, SumId)) -> Option<Edge> {
        match self.caches.cont.probe(key) {
            CacheLookup::Hit(v) => Some(v),
            CacheLookup::Miss => None,
            CacheLookup::Stale(v) if self.stale_value_admissible(v) => {
                self.caches.cont.admit(*key, v);
                Some(v)
            }
            CacheLookup::Stale(_) => {
                self.stats.stale_handle_hits += 1;
                self.caches.cont.reject_stale();
                None
            }
        }
    }

    #[inline]
    pub(crate) fn cache_get_slice(&mut self, key: &(NodeId, Var, bool)) -> Option<Edge> {
        match self.caches.slice.probe(key) {
            CacheLookup::Hit(v) => Some(v),
            CacheLookup::Miss => None,
            CacheLookup::Stale(v) if self.stale_value_admissible(v) => {
                self.caches.slice.admit(*key, v);
                Some(v)
            }
            CacheLookup::Stale(_) => {
                self.stats.stale_handle_hits += 1;
                self.caches.slice.reject_stale();
                None
            }
        }
    }

    #[inline]
    pub(crate) fn cache_get_conj(&mut self, key: &NodeId) -> Option<Edge> {
        match self.caches.conj.probe(key) {
            CacheLookup::Hit(v) => Some(v),
            CacheLookup::Miss => None,
            CacheLookup::Stale(v) if self.stale_value_admissible(v) => {
                self.caches.conj.admit(*key, v);
                Some(v)
            }
            CacheLookup::Stale(_) => {
                self.stats.stale_handle_hits += 1;
                self.caches.conj.reject_stale();
                None
            }
        }
    }

    #[inline]
    pub(crate) fn cache_get_rename(&mut self, key: &(NodeId, RenameId)) -> Option<Edge> {
        match self.caches.rename.probe(key) {
            CacheLookup::Hit(v) => Some(v),
            CacheLookup::Miss => None,
            CacheLookup::Stale(v) if self.stale_value_admissible(v) => {
                self.caches.rename.admit(*key, v);
                Some(v)
            }
            CacheLookup::Stale(_) => {
                self.stats.stale_handle_hits += 1;
                self.caches.rename.reject_stale();
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Weight arithmetic (interned).
    // ------------------------------------------------------------------

    /// The complex value behind an interned weight.
    #[inline]
    pub fn weight_value(&self, w: CIdx) -> Cplx {
        self.table.value(w)
    }

    /// The weight-snapping tolerance this manager interns under.
    pub fn tolerance(&self) -> f64 {
        self.table.tolerance()
    }

    /// Interns a complex value.
    #[inline]
    pub fn intern(&mut self, c: Cplx) -> CIdx {
        self.table.intern(c)
    }

    #[inline]
    pub(crate) fn cmul(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a.is_zero() || b.is_zero() {
            return CIdx::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let v = self.table.value(a) * self.table.value(b);
        self.table.intern(v)
    }

    #[inline]
    pub(crate) fn cadd(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let v = self.table.value(a) + self.table.value(b);
        self.table.intern(v)
    }

    #[inline]
    pub(crate) fn cdiv(&mut self, a: CIdx, b: CIdx) -> CIdx {
        debug_assert!(!b.is_zero(), "division by interned zero");
        if a.is_zero() {
            return CIdx::ZERO;
        }
        if b.is_one() {
            return a;
        }
        if a == b {
            return CIdx::ONE;
        }
        let v = self.table.value(a) / self.table.value(b);
        self.table.intern(v)
    }

    #[inline]
    pub(crate) fn cconj(&mut self, a: CIdx) -> CIdx {
        let v = self.table.value(a).conj();
        self.table.intern(v)
    }

    // ------------------------------------------------------------------
    // Node construction.
    // ------------------------------------------------------------------

    /// The variable of the node behind an edge ([`TERMINAL_VAR`] sentinel —
    /// larger than any real variable — for the terminal).
    #[inline]
    pub(crate) fn var_of(&self, n: NodeId) -> Var {
        self.unique.node(n).var
    }

    /// The level of `v` in the global variable order (0 = top; the
    /// terminal sentinel maps below every real variable). Under the
    /// default natural order this is the raw variable value; once a
    /// custom order is installed, unseen variables are registered lazily
    /// next to their qubit's block (see the `order` module docs).
    #[inline]
    pub fn level_of(&mut self, v: Var) -> u32 {
        self.order.level_of(v)
    }

    /// The level of the variable labelling node `n` (terminal: deepest).
    #[inline]
    pub(crate) fn level_of_node(&mut self, n: NodeId) -> u32 {
        let v = self.var_of(n);
        self.order.level_of(v)
    }

    /// The variable labelling the root node of `e`, or `None` for scalars.
    pub fn top_var(&self, e: Edge) -> Option<Var> {
        if e.is_terminal() {
            None
        } else {
            Some(self.var_of(e.node))
        }
    }

    #[inline]
    pub(crate) fn node(&self, n: NodeId) -> &Node {
        self.unique.node(n)
    }

    /// Low/high cofactor edges of `e` with respect to variable `x`.
    ///
    /// If the root of `e` is labelled `x`, these are its successors with the
    /// root weight multiplied in; if the diagram does not depend on `x`
    /// (root level below `x`'s), both cofactors are `e` itself.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the root variable sits *above* `x` in the
    /// global order: cofactors must be taken in order.
    pub fn cofactors(&mut self, e: Edge, x: Var) -> (Edge, Edge) {
        if e.is_terminal() {
            return (e, e);
        }
        let lx = self.level_of(x);
        if self.level_of_node(e.node) > lx {
            return (e, e);
        }
        debug_assert_eq!(self.var_of(e.node), x, "cofactor below root variable");
        let Node { low, high, .. } = *self.node(e.node);
        let lo = self.mul_weight(low, e.weight);
        let hi = self.mul_weight(high, e.weight);
        (lo, hi)
    }

    /// Multiplies an edge's weight by `w`, preserving the zero invariant.
    #[inline]
    pub(crate) fn mul_weight(&mut self, e: Edge, w: CIdx) -> Edge {
        if w.is_one() {
            return e;
        }
        let nw = self.cmul(e.weight, w);
        if nw.is_zero() {
            Edge::ZERO
        } else {
            e.with_weight(nw)
        }
    }

    /// Creates (or finds) the node `var ? high : low` and returns the
    /// normalised edge to it.
    ///
    /// This is the single entry point through which every diagram is built;
    /// it applies the reduction and normalisation rules, so any two calls
    /// describing the same tensor return identical edges.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if a successor's root variable does not sit below
    /// `var` in the global order.
    pub fn make_node(&mut self, var: Var, low: Edge, high: Edge) -> Edge {
        // Registering `var` here (not just in debug asserts) keeps lazy
        // level assignment identical across debug and release builds.
        let var_level = self.level_of(var);
        debug_assert!(
            low.is_terminal() || self.level_of_node(low.node) > var_level,
            "low successor out of order"
        );
        debug_assert!(
            high.is_terminal() || self.level_of_node(high.node) > var_level,
            "high successor out of order"
        );
        let _ = var_level;
        // Redundant node: both branches denote the same tensor.
        if low == high {
            return low;
        }
        // Normalise: the largest-magnitude outgoing weight becomes 1,
        // breaking exact ties towards the low branch. The rule must be
        // scale-equivariant (pivot(λa, λb) = λ·pivot(a, b)) because ops
        // factor weights out before recursing — see invariant 2 on the
        // struct docs. No scale-equivariant rule can also be a pure
        // function of the value set ({a, −a} is a fixed point of
        // negation), so on ties the level-swap primitive may re-group
        // onto the other value; it counts those in `reorder_residuals`.
        let (wl, wh) = (low.weight, high.weight);
        let pivot = if wl.is_zero() {
            wh
        } else if wh.is_zero() {
            wl
        } else {
            let (al, ah) = (self.table.value(wl).abs(), self.table.value(wh).abs());
            if al >= ah {
                wl
            } else {
                wh
            }
        };
        debug_assert!(!pivot.is_zero(), "both branches zero should have reduced");
        let nl = if wl == pivot {
            low.with_weight(if wl.is_zero() { CIdx::ZERO } else { CIdx::ONE })
        } else {
            let w = self.cdiv(wl, pivot);
            if w.is_zero() {
                Edge::ZERO
            } else {
                low.with_weight(w)
            }
        };
        let nh = if wh == pivot && wl != pivot {
            high.with_weight(CIdx::ONE)
        } else {
            let w = self.cdiv(wh, pivot);
            if w.is_zero() {
                Edge::ZERO
            } else {
                high.with_weight(w)
            }
        };
        // Division may round a near-tie to make branches equal after all.
        if nl == nh {
            return self.mul_weight(nl, pivot);
        }
        let node = Node {
            var,
            low: nl,
            high: nh,
        };
        let (id, created) = match self.unique.get_or_insert(node) {
            Ok(found) => found,
            // Exhaustion unwinds as a typed payload: there is no partial
            // diagram to hand back from the middle of a recursion, and the
            // session facade converts this into its fallible API's error.
            Err(full) => std::panic::panic_any(ArenaExhausted {
                allocated: full.allocated,
                capacity: full.capacity,
            }),
        };
        if created {
            self.stats.nodes_created += 1;
            self.allocs_since_gc += 1;
            self.stats.peak_arena = self.stats.peak_arena.max(self.unique.allocated());
        }
        Edge {
            node: id,
            weight: pivot,
        }
    }

    // ------------------------------------------------------------------
    // Constructors for common tensors.
    // ------------------------------------------------------------------

    /// The scalar tensor with the given value.
    pub fn constant(&mut self, c: Cplx) -> Edge {
        let w = self.intern(c);
        if w.is_zero() {
            Edge::ZERO
        } else {
            Edge {
                node: TERMINAL,
                weight: w,
            }
        }
    }

    /// The rank-1 selector tensor over `var`: `[1, 0]` if `value` is false,
    /// `[0, 1]` if true. This is `<var = value>` — the building block for
    /// basis kets and control legs.
    pub fn selector(&mut self, var: Var, value: bool) -> Edge {
        if value {
            self.make_node(var, Edge::ZERO, Edge::ONE)
        } else {
            self.make_node(var, Edge::ONE, Edge::ZERO)
        }
    }

    /// The identity tensor `delta(x, y)` over two variables (symmetric in
    /// `x` and `y`; the node structure follows the global order).
    ///
    /// # Panics
    ///
    /// Panics if `x == y`.
    pub fn identity(&mut self, x: Var, y: Var) -> Edge {
        assert!(x != y, "identity requires two distinct variables");
        let (top, bot) = if self.level_of(x) < self.level_of(y) {
            (x, y)
        } else {
            (y, x)
        };
        let b0 = self.selector(bot, false);
        let b1 = self.selector(bot, true);
        self.make_node(top, b0, b1)
    }

    /// The computational-basis ket `|bits>` over the given variables.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or variables are not strictly ascending.
    pub fn basis_ket(&mut self, vars: &[Var], bits: &[bool]) -> Edge {
        assert_eq!(vars.len(), bits.len(), "one bit per variable");
        assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "variables must be ascending"
        );
        // Build from the deepest level up so every successor sits below
        // its node in the global order (which may differ from the natural
        // order the input convention uses).
        let by_level = self.level_sorted_indices(vars);
        let mut e = Edge::ONE;
        for &i in by_level.iter().rev() {
            e = if bits[i] {
                self.make_node(vars[i], Edge::ZERO, e)
            } else {
                self.make_node(vars[i], e, Edge::ZERO)
            };
        }
        e
    }

    /// A product state: qubit `i` in state `amps[i] = (alpha, beta)` meaning
    /// `alpha|0> + beta|1>` on variable `vars[i]`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or variables are not strictly ascending.
    pub fn product_ket(&mut self, vars: &[Var], amps: &[(Cplx, Cplx)]) -> Edge {
        assert_eq!(vars.len(), amps.len(), "one amplitude pair per variable");
        assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "variables must be ascending"
        );
        let by_level = self.level_sorted_indices(vars);
        let mut e = Edge::ONE;
        for &i in by_level.iter().rev() {
            let (a, b) = amps[i];
            let wa = self.intern(a);
            let wb = self.intern(b);
            let lo = self.mul_weight(e, wa);
            let hi = self.mul_weight(e, wb);
            e = self.make_node(vars[i], lo, hi);
        }
        e
    }

    /// Indices of `vars` sorted by global level, shallowest first.
    fn level_sorted_indices(&mut self, vars: &[Var]) -> Vec<usize> {
        let mut keyed: Vec<(u32, usize)> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.level_of(v), i))
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|(_, i)| i).collect()
    }

    // ------------------------------------------------------------------
    // Evaluation and dense conversion.
    // ------------------------------------------------------------------

    /// Evaluates the tensor at a (partial) assignment.
    ///
    /// Variables the diagram does not depend on may be omitted; variables it
    /// *does* depend on must be present.
    ///
    /// # Panics
    ///
    /// Panics if the diagram branches on a variable missing from `asn`.
    pub fn eval(&self, e: Edge, asn: &BTreeMap<Var, bool>) -> Cplx {
        let mut acc = self.table.value(e.weight);
        let mut cur = e;
        while !cur.is_terminal() && !acc.is_zero() {
            let n = self.node(cur.node);
            let bit = *asn
                .get(&n.var)
                .unwrap_or_else(|| panic!("assignment missing variable {}", n.var));
            cur = if bit { n.high } else { n.low };
            acc *= self.table.value(cur.weight);
        }
        acc
    }

    /// Builds a TDD from a dense tensor.
    pub fn from_tensor(&mut self, t: &Tensor) -> Edge {
        let vars: Vec<Var> = t.vars().iter().collect();
        // Split on variables top-down in the *global* order so the
        // resulting diagram is well-formed under any installed order.
        let by_level = self.level_sorted_indices(&vars);
        let vars: Vec<Var> = by_level.into_iter().map(|i| vars[i]).collect();
        self.build_tensor_rec(t, &vars)
    }

    fn build_tensor_rec(&mut self, t: &Tensor, vars: &[Var]) -> Edge {
        match vars.split_first() {
            None => self.constant(t.value_at(0)),
            Some((&v, rest)) => {
                let lo_t = t.slice(v, false);
                let hi_t = t.slice(v, true);
                let lo = self.build_tensor_rec(&lo_t, rest);
                let hi = self.build_tensor_rec(&hi_t, rest);
                self.make_node(v, lo, hi)
            }
        }
    }

    /// Builds the TDD of a `2^k x 2^k` matrix over explicit column and row
    /// variables (see [`Tensor::from_matrix`] for conventions).
    pub fn from_matrix(&mut self, m: &Mat, col_vars: &[Var], row_vars: &[Var]) -> Edge {
        let t = Tensor::from_matrix(m, col_vars, row_vars);
        self.from_tensor(&t)
    }

    /// Expands the TDD to a dense tensor over `vars` (which must contain the
    /// diagram's support).
    ///
    /// # Panics
    ///
    /// Panics if the diagram depends on a variable not listed in `vars`.
    pub fn to_tensor(&self, e: Edge, vars: &[Var]) -> Tensor {
        let sorted: Vec<Var> = {
            let mut v = vars.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        };
        let k = sorted.len();
        let mut data = vec![Cplx::ZERO; 1 << k];
        let mut asn = BTreeMap::new();
        for (bits, slot) in data.iter_mut().enumerate() {
            asn.clear();
            for (i, &v) in sorted.iter().enumerate() {
                asn.insert(v, (bits >> (k - 1 - i)) & 1 == 1);
            }
            *slot = self.eval(e, &asn);
        }
        Tensor::new(sorted, data)
    }

    /// The set of variables the diagram actually depends on.
    pub fn support(&self, e: Edge) -> VarSet {
        let mut seen = std::collections::HashSet::new();
        let mut vars = Vec::new();
        let mut stack = vec![e.node];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.node(n);
            vars.push(node.var);
            stack.push(node.low.node);
            stack.push(node.high.node);
        }
        VarSet::from_iter(vars)
    }

    /// Number of distinct non-terminal nodes reachable from `e`.
    ///
    /// This is the "#node" metric of the paper's Table I.
    pub fn node_count(&self, e: Edge) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![e.node];
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.node(n);
            stack.push(node.low.node);
            stack.push(node.high.node);
        }
        count
    }

    /// The lexicographically smallest assignment of `vars` on which the
    /// tensor is non-zero, or `None` for the zero tensor.
    ///
    /// "Lexicographically smallest" orders assignments by the given
    /// (ascending) variable order with `false < true` — i.e. it finds the
    /// *leftmost non-zero path* of the paper's Section IV-A, used there to
    /// locate the first non-zero column of a projector. Variables in `vars`
    /// the diagram does not branch on are reported `false`.
    ///
    /// # Panics
    ///
    /// Panics if the diagram depends on a variable missing from `vars`.
    pub fn first_nonzero_assignment(&mut self, e: Edge, vars: &[Var]) -> Option<Vec<bool>> {
        if e.is_zero() {
            return None;
        }
        // Decide one variable at a time in the *given* order via slices,
        // so the result is the lexicographic minimum with respect to
        // `vars` regardless of where each variable sits in the global
        // level order. A non-zero diagram always has a non-zero branch on
        // every variable, so `cur` never becomes zero.
        let mut out = vec![false; vars.len()];
        let mut cur = e;
        for (i, &v) in vars.iter().enumerate() {
            let lo = self.slice(cur, v, false);
            if lo.is_zero() {
                out[i] = true;
                cur = self.slice(cur, v, true);
            } else {
                cur = lo;
            }
        }
        assert!(
            cur.is_terminal(),
            "diagram depends on a variable not listed in vars"
        );
        debug_assert!(!cur.is_zero());
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asn(pairs: &[(u32, bool)]) -> BTreeMap<Var, bool> {
        pairs.iter().map(|&(v, b)| (Var(v), b)).collect()
    }

    #[test]
    fn make_node_reduces_redundant() {
        let mut m = TddManager::new();
        let e = m.make_node(Var(0), Edge::ONE, Edge::ONE);
        assert_eq!(e, Edge::ONE);
    }

    #[test]
    fn make_node_is_hash_consed() {
        let mut m = TddManager::new();
        let a = m.selector(Var(3), true);
        let b = m.selector(Var(3), true);
        assert_eq!(a, b);
        assert_eq!(m.stats().nodes_created, 1);
    }

    #[test]
    fn normalisation_pushes_largest_weight_up() {
        let mut m = TddManager::new();
        // Build [2, 1] over var 0: root weight must be 2, low branch 1,
        // high branch 0.5.
        let two = m.constant(Cplx::real(2.0));
        let e = m.make_node(Var(0), two, Edge::ONE);
        assert!(m.weight_value(e.weight).approx_eq(Cplx::real(2.0)));
        let n = *m.node(e.node);
        assert!(n.low.weight.is_one());
        assert!(m.weight_value(n.high.weight).approx_eq(Cplx::real(0.5)));
    }

    #[test]
    fn canonicity_same_tensor_same_edge() {
        let mut m = TddManager::new();
        // Two different construction orders of the same tensor [1,1,1,-1].
        let h = Cplx::FRAC_1_SQRT_2;
        let mat = Mat::from_rows(&[&[h, h], &[h, -h]]);
        let t = Tensor::from_matrix(&mat, &[Var(0)], &[Var(1)]);
        let a = m.from_tensor(&t);
        let b = m.from_matrix(&mat, &[Var(0)], &[Var(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn eval_multiplies_path_weights() {
        let mut m = TddManager::new();
        let v = m.product_ket(
            &[Var(0), Var(1)],
            &[
                (Cplx::FRAC_1_SQRT_2, Cplx::FRAC_1_SQRT_2),
                (Cplx::ONE, Cplx::ZERO),
            ],
        );
        assert!(m
            .eval(v, &asn(&[(0, false), (1, false)]))
            .approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(m
            .eval(v, &asn(&[(0, true), (1, false)]))
            .approx_eq(Cplx::FRAC_1_SQRT_2));
        assert!(m
            .eval(v, &asn(&[(0, true), (1, true)]))
            .approx_eq(Cplx::ZERO));
    }

    #[test]
    fn basis_ket_roundtrip() {
        let mut m = TddManager::new();
        let vars = [Var(0), Var(1), Var(2)];
        let e = m.basis_ket(&vars, &[true, false, true]);
        assert!(m
            .eval(e, &asn(&[(0, true), (1, false), (2, true)]))
            .approx_eq(Cplx::ONE));
        assert!(m
            .eval(e, &asn(&[(0, true), (1, true), (2, true)]))
            .approx_eq(Cplx::ZERO));
        assert_eq!(m.node_count(e), 3);
    }

    #[test]
    fn identity_tensor() {
        let mut m = TddManager::new();
        let e = m.identity(Var(0), Var(1));
        assert!(m
            .eval(e, &asn(&[(0, false), (1, false)]))
            .approx_eq(Cplx::ONE));
        assert!(m
            .eval(e, &asn(&[(0, true), (1, true)]))
            .approx_eq(Cplx::ONE));
        assert!(m
            .eval(e, &asn(&[(0, false), (1, true)]))
            .approx_eq(Cplx::ZERO));
    }

    #[test]
    fn dense_roundtrip() {
        let mut m = TddManager::new();
        let t = Tensor::new(
            vec![Var(0), Var(1)],
            vec![
                Cplx::real(0.25),
                Cplx::new(0.0, -0.5),
                Cplx::ZERO,
                Cplx::real(1.0),
            ],
        );
        let e = m.from_tensor(&t);
        let back = m.to_tensor(e, &[Var(0), Var(1)]);
        assert!(back.approx_eq(&t));
    }

    #[test]
    fn support_skips_dont_care_vars() {
        let mut m = TddManager::new();
        // Tensor over vars {0,2} that doesn't depend on var 1.
        let s0 = m.selector(Var(2), true);
        let e = m.make_node(Var(0), s0, s0);
        assert_eq!(e, s0); // reduced: no dependence on var 0 either
        let sup = m.support(e);
        assert_eq!(sup.as_slice(), &[Var(2)]);
    }

    #[test]
    fn first_nonzero_assignment_finds_leftmost() {
        let mut m = TddManager::new();
        // |10> + |11> over vars 0,1: leftmost non-zero assignment is (1,0).
        let a = m.basis_ket(&[Var(0), Var(1)], &[true, false]);
        let b = m.basis_ket(&[Var(0), Var(1)], &[true, true]);
        let s = m.add(a, b);
        let path = m.first_nonzero_assignment(s, &[Var(0), Var(1)]).unwrap();
        assert_eq!(path, vec![true, false]);
        assert_eq!(m.first_nonzero_assignment(Edge::ZERO, &[Var(0)]), None);
    }

    #[test]
    fn node_count_of_zero_and_scalar() {
        let m = TddManager::new();
        assert_eq!(m.node_count(Edge::ZERO), 0);
        assert_eq!(m.node_count(Edge::ONE), 0);
    }
}
