//! The backed Robin Hood unique table: node storage plus the hash-consing
//! index, with generational slots.
//!
//! This replaces the old arena/`FastMap` split with one structure that
//! **owns node memory** (the shape of rsdd's backed robin-hood table and of
//! the consolidated BDD unique tables in mature packages):
//!
//! * **Slot store** — a `Vec` of generational slots plus a free list. A
//!   node lives at a fixed slot for its whole life; a GC sweep frees the
//!   slot by bumping its generation and pushing it on the free list, and
//!   the next interning reuses it. Nothing is ever relocated, so handles
//!   held outside the manager stay bit-identical across any number of
//!   collections (live) or become detectably stale (generation mismatch).
//! * **Robin Hood index** — an open-addressing array of `{hash, slot,
//!   generation}` entries with linear probing and Robin Hood displacement
//!   (an insert steals the cell of any entry closer to its home, bounding
//!   probe-length variance). Deletion is **lazy**: a sweep touches only
//!   slots, and an index entry whose recorded generation no longer matches
//!   its slot's is a tombstone that lookups skip and inserts reuse. The
//!   index is therefore *never rebuilt by the GC* — tombstones are dropped
//!   wholesale only when the index grows (or rehashes at the same size
//!   under tombstone pressure), which the [`UniqueTable::unique_rebuilds`]
//!   counter makes observable: a test can assert a collection leaves it
//!   untouched.
//!
//! Probe lengths are recorded in a fixed-bucket histogram
//! ([`crate::ProbeHistogram`]) so the p50/p99 of the consing hot path is
//! cheap telemetry rather than a profiling session.
//!
//! # Incremental sweeps
//!
//! The table carries the GC's sweep cursor: after a stop-the-world mark, a
//! sweep may be taken in bounded steps ([`UniqueTable::sweep_step`]),
//! amortizing pause time across safepoint polls. While a sweep is in
//! progress, freshly interned nodes are born marked, and a lookup that
//! finds an unmarked-but-unswept node *resurrects* it (marks it live) —
//! sound because diagrams are built bottom-up: the successors of any node
//! an operation asks for were themselves returned (and thus marked)
//! earlier.
//!
//! Generations are `u32` and bump once per sweep of a slot; a stale handle
//! could only be confused for live again after 2³² sweeps of the same
//! slot, which we accept as out of scope.

use qits_tensor::Var;

use crate::node::{Edge, Node, NodeId, TERMINAL_VAR};
use crate::stats::ProbeHistogram;

/// Smallest index size (power of two), matching the old arena's
/// pre-allocation.
const MIN_INDEX: usize = 1 << 12;

/// One node slot: the stored node plus its generation and GC bits.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Bumped every time the slot is freed; a handle is live iff its
    /// generation equals the slot's.
    gen: u32,
    /// Whether the slot is on the free list.
    dead: bool,
    /// GC mark bit (meaningful between a mark phase and the end of its
    /// sweep).
    marked: bool,
    node: Node,
}

/// One cell of the Robin Hood index.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Folded 64-bit node hash; the home cell is `hash & mask`.
    hash: u32,
    /// Slot the entry points at; [`EMPTY`] marks an unused cell.
    slot: u32,
    /// Slot generation at insert time; a mismatch with the slot's current
    /// generation makes the entry a tombstone.
    gen: u32,
}

const EMPTY: u32 = u32::MAX;

/// Explicit tombstone left by [`UniqueTable::remove_index_entry`] (the
/// level-swap path). Lookups skip it exactly like a generation-stale
/// entry, inserts reuse it, and rehashes purge it. (Backward-shift
/// deletion would be unsound here: tombstone-reuse inserts break the
/// Robin Hood displacement invariant the shift relies on.)
const TOMB: u32 = u32::MAX - 1;

const EMPTY_CELL: IndexEntry = IndexEntry {
    hash: 0,
    slot: EMPTY,
    gen: 0,
};

const TOMB_CELL: IndexEntry = IndexEntry {
    hash: 0,
    slot: TOMB,
    gen: 0,
};

/// Error returned by [`UniqueTable::get_or_insert`] when the slot store is
/// at its configured capacity (or the `u32` index space) and the free list
/// is empty.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TableFull {
    pub allocated: usize,
    pub capacity: usize,
}

/// Sweep cursor: `Idle` between collections, `InProgress` after a mark
/// until every slot allocated at mark time has been visited.
#[derive(Debug, Clone, Copy)]
enum SweepState {
    Idle,
    InProgress { next: u32, end: u32 },
}

/// The backed unique table (see the module docs).
#[derive(Debug)]
pub(crate) struct UniqueTable {
    slots: Vec<Slot>,
    free: Vec<u32>,
    entries: Vec<IndexEntry>,
    /// Index entries whose slot generation still matches.
    live_entries: usize,
    /// Index entries gone stale since the last rehash.
    tombstones: usize,
    /// Hard bound on allocated slots (terminal included).
    node_capacity: usize,
    sweep: SweepState,
    /// Probe-length histogram over every lookup (hit or insert).
    pub probe_hist: ProbeHistogram,
    /// Tombstones ever created (a lifetime counter, unlike the live
    /// [`UniqueTable::tombstone_count`] snapshot).
    pub tombstones_created: u64,
    /// Slot generations bumped by sweeps.
    pub generation_bumps: u64,
    /// Full index rehashes (growth or same-size tombstone purges). The GC
    /// itself never rehashes — a test pins that down.
    pub unique_rebuilds: u64,
}

#[inline]
fn hash_node(node: &Node) -> u32 {
    use std::hash::BuildHasher;
    let h = crate::hash::FastBuild::default().hash_one(node);
    (h ^ (h >> 32)) as u32
}

impl UniqueTable {
    /// A table holding only the terminal, bounded to `node_capacity`
    /// allocated slots.
    pub(crate) fn new(node_capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(MIN_INDEX);
        // Slot 0 is the terminal; its node fields are never read through
        // edges and the slot is never swept.
        slots.push(Slot {
            gen: 0,
            dead: false,
            marked: true,
            node: Node {
                var: TERMINAL_VAR,
                low: Edge::ZERO,
                high: Edge::ZERO,
            },
        });
        UniqueTable {
            slots,
            free: Vec::new(),
            entries: vec![EMPTY_CELL; MIN_INDEX],
            live_entries: 0,
            tombstones: 0,
            node_capacity,
            sweep: SweepState::Idle,
            probe_hist: ProbeHistogram::default(),
            tombstones_created: 0,
            generation_bumps: 0,
            unique_rebuilds: 0,
        }
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// Allocated slots, terminal and dead-but-reusable slots included.
    #[inline]
    pub(crate) fn allocated(&self) -> usize {
        self.slots.len()
    }

    /// Live non-terminal nodes (allocated minus free).
    #[inline]
    pub(crate) fn occupied(&self) -> usize {
        self.slots.len() - 1 - self.free.len()
    }

    /// Slots currently on the free list.
    #[inline]
    pub(crate) fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Index entries currently stale.
    #[inline]
    pub(crate) fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Robin Hood index cells currently allocated.
    #[inline]
    pub(crate) fn index_cells(&self) -> usize {
        self.entries.len()
    }

    /// Whether `id` still names the node it was created for.
    #[inline]
    pub(crate) fn is_live(&self, id: NodeId) -> bool {
        match self.slots.get(id.index()) {
            Some(s) => s.gen == id.gen && !s.dead,
            None => false,
        }
    }

    /// The node behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics (in debug) on a stale handle — dereferencing one is a
    /// root-safety bug in the caller.
    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        let s = &self.slots[id.index()];
        debug_assert!(
            s.gen == id.gen && !s.dead,
            "stale node handle dereferenced (root-safety violation)"
        );
        &s.node
    }

    /// Hard bound on allocated slots.
    #[inline]
    pub(crate) fn node_capacity(&self) -> usize {
        self.node_capacity
    }

    /// Re-bounds the slot store (does not free anything already allocated).
    pub(crate) fn set_node_capacity(&mut self, cap: usize) {
        self.node_capacity = cap;
    }

    /// Whether a mark has run whose sweep is not yet complete.
    #[inline]
    pub(crate) fn sweep_in_progress(&self) -> bool {
        matches!(self.sweep, SweepState::InProgress { .. })
    }

    // ------------------------------------------------------------------
    // Hash consing.
    // ------------------------------------------------------------------

    /// Finds or interns `node`, returning its handle and whether it was
    /// created. Probes from the hash's home cell, skipping tombstones, and
    /// terminates only at an empty cell (tombstones make probe-sequence
    /// early exits unsound). An insert reuses the first tombstone of its
    /// probe run, else Robin Hood-displaces into the run.
    pub(crate) fn get_or_insert(&mut self, node: Node) -> Result<(NodeId, bool), TableFull> {
        // Keep load (live + tombstones) at or below 3/4 so probe runs stay
        // short; rehash in place when tombstone pressure alone is at fault.
        if (self.live_entries + self.tombstones + 1) * 4 > self.entries.len() * 3 {
            self.rehash();
        }
        let h = hash_node(&node);
        let mask = self.entries.len() - 1;
        let mut pos = h as usize & mask;
        let mut dist = 0u32;
        let mut first_stale: Option<usize> = None;
        loop {
            let e = self.entries[pos];
            if e.slot == EMPTY {
                break;
            }
            if e.slot == TOMB {
                if first_stale.is_none() {
                    first_stale = Some(pos);
                }
                pos = (pos + 1) & mask;
                dist += 1;
                continue;
            }
            let s = &mut self.slots[e.slot as usize];
            if s.gen != e.gen {
                if first_stale.is_none() {
                    first_stale = Some(pos);
                }
            } else if e.hash == h && s.node == node {
                self.probe_hist.record(dist);
                // Resurrection: a pending sweep must not free a node an
                // operation just asked for. Its successors are already
                // marked — diagrams are built bottom-up, so they were
                // returned (marked or freshly born) earlier.
                if !s.marked && matches!(self.sweep, SweepState::InProgress { .. }) {
                    s.marked = true;
                }
                return Ok((
                    NodeId {
                        idx: e.slot,
                        gen: e.gen,
                    },
                    false,
                ));
            }
            pos = (pos + 1) & mask;
            dist += 1;
        }
        self.probe_hist.record(dist);
        // Miss: allocate a slot — free list first, so churn-heavy
        // workloads plateau near their live peak instead of growing.
        let born_marked = matches!(self.sweep, SweepState::InProgress { .. });
        let idx = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                debug_assert!(s.dead);
                s.dead = false;
                s.marked = born_marked;
                s.node = node;
                i
            }
            None => {
                if self.slots.len() >= self.node_capacity || self.slots.len() >= TOMB as usize {
                    return Err(TableFull {
                        allocated: self.slots.len(),
                        capacity: self.node_capacity.min(TOMB as usize),
                    });
                }
                let i = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    dead: false,
                    marked: born_marked,
                    node,
                });
                i
            }
        };
        let gen = self.slots[idx as usize].gen;
        let entry = IndexEntry {
            hash: h,
            slot: idx,
            gen,
        };
        match first_stale {
            Some(p) => {
                // Reuse the first tombstone of the probe run: later live
                // entries of the run stay reachable (lookups never stop at
                // a tombstone).
                self.entries[p] = entry;
                self.tombstones -= 1;
            }
            None => self.rh_insert(entry),
        }
        self.live_entries += 1;
        Ok((NodeId { idx, gen }, true))
    }

    /// Robin Hood insert: walk from the home cell, swapping with any entry
    /// closer to its own home, until an empty cell absorbs the carried
    /// entry. Only called when the probe run held no tombstone, so every
    /// traversed entry is live.
    fn rh_insert(&mut self, mut entry: IndexEntry) {
        let mask = self.entries.len() - 1;
        let mut pos = entry.hash as usize & mask;
        let mut dist = 0usize;
        loop {
            let cur = self.entries[pos];
            if cur.slot == EMPTY {
                self.entries[pos] = entry;
                return;
            }
            let cur_dist = (pos + self.entries.len() - (cur.hash as usize & mask)) & mask;
            if cur_dist < dist {
                self.entries[pos] = entry;
                entry = cur;
                dist = cur_dist;
            }
            pos = (pos + 1) & mask;
            dist += 1;
        }
    }

    /// Rebuilds the index, dropping tombstones — doubling it if live
    /// entries alone crowd it, else at the same size. This is the **only**
    /// place the index is ever rebuilt; collections never call it.
    fn rehash(&mut self) {
        let target = if (self.live_entries + 1) * 2 > self.entries.len() {
            self.entries.len() * 2
        } else {
            self.entries.len()
        };
        let old = std::mem::replace(&mut self.entries, vec![EMPTY_CELL; target]);
        self.tombstones = 0;
        self.unique_rebuilds += 1;
        for e in old {
            if e.slot != EMPTY && e.slot != TOMB && self.slots[e.slot as usize].gen == e.gen {
                self.rh_insert(e);
            }
        }
    }

    // ------------------------------------------------------------------
    // GC support.
    // ------------------------------------------------------------------

    /// Clears every mark bit, starting a new mark phase. Any unfinished
    /// sweep must be completed first (the manager enforces this).
    pub(crate) fn begin_mark(&mut self) {
        debug_assert!(!self.sweep_in_progress(), "mark during an unfinished sweep");
        for s in self.slots.iter_mut() {
            s.marked = false;
        }
        self.slots[0].marked = true;
    }

    /// Marks everything reachable from the slot indices on `stack`,
    /// returning how many non-terminal nodes were newly marked.
    pub(crate) fn mark_reachable(&mut self, stack: &mut Vec<u32>) -> usize {
        let mut marked = 0usize;
        while let Some(i) = stack.pop() {
            let s = &mut self.slots[i as usize];
            if s.marked {
                continue;
            }
            s.marked = true;
            marked += 1;
            let (l, h) = (s.node.low.node, s.node.high.node);
            if !l.is_terminal() {
                stack.push(l.idx);
            }
            if !h.is_terminal() {
                stack.push(h.idx);
            }
        }
        marked
    }

    /// Transitively marks the (live) subgraph of `id` if a sweep is in
    /// progress — the insurance [`crate::TddManager::protect`] buys for
    /// edges rooted between a mark and the end of its sweep.
    pub(crate) fn mark_live_subgraph(&mut self, id: NodeId) {
        if !self.sweep_in_progress() || id.is_terminal() || !self.is_live(id) {
            return;
        }
        let mut stack = vec![id.idx];
        self.mark_reachable(&mut stack);
    }

    /// Arms the sweep cursor over every slot allocated at mark time.
    pub(crate) fn begin_sweep(&mut self) {
        self.sweep = SweepState::InProgress {
            next: 1,
            end: self.slots.len() as u32,
        };
    }

    /// Sweeps at most `budget` slots: each unmarked live slot is freed by
    /// bumping its generation (its index entry becomes a tombstone in
    /// place — the index itself is untouched). Returns the slots reclaimed
    /// and whether the sweep completed.
    pub(crate) fn sweep_step(&mut self, budget: usize) -> (usize, bool) {
        let SweepState::InProgress { mut next, end } = self.sweep else {
            return (0, true);
        };
        let mut reclaimed = 0usize;
        let mut visited = 0usize;
        while next < end && visited < budget {
            let s = &mut self.slots[next as usize];
            if !s.dead && !s.marked {
                s.dead = true;
                s.gen = s.gen.wrapping_add(1);
                self.free.push(next);
                self.generation_bumps += 1;
                self.tombstones += 1;
                self.tombstones_created += 1;
                self.live_entries -= 1;
                reclaimed += 1;
            }
            next += 1;
            visited += 1;
        }
        if next >= end {
            self.sweep = SweepState::Idle;
            (reclaimed, true)
        } else {
            self.sweep = SweepState::InProgress { next, end };
            (reclaimed, false)
        }
    }

    // ------------------------------------------------------------------
    // Level-swap support (dynamic variable reordering).
    //
    // The swap primitive rewrites the *contents* of slots in place — a
    // slot keeps its index and generation, so every handle pointing at it
    // stays valid and simply denotes the (identical) tensor under the new
    // order. The index, which keys on content, must be updated around
    // each rewrite: `remove_index_entry` before the content changes,
    // `insert_index_entry` after.
    // ------------------------------------------------------------------

    /// Calls `f` with every non-dead, non-terminal slot index and its
    /// node.
    pub(crate) fn for_each_live_slot(&self, mut f: impl FnMut(u32, &Node)) {
        for (i, s) in self.slots.iter().enumerate().skip(1) {
            if !s.dead {
                f(i as u32, &s.node);
            }
        }
    }

    /// Non-dead slots whose node is labelled `var`, in slot order.
    pub(crate) fn live_slots_with_var(&self, var: Var) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_live_slot(|i, n| {
            if n.var == var {
                out.push(i);
            }
        });
        out
    }

    /// The node stored at a non-dead slot.
    pub(crate) fn node_at_slot(&self, slot: u32) -> Node {
        debug_assert!(!self.slots[slot as usize].dead);
        self.slots[slot as usize].node
    }

    /// Overwrites the node content of `slot` **without touching its
    /// generation**: every handle held on the slot stays valid. The index
    /// entry for the old content must have been removed first and one for
    /// the new content must be inserted afterwards.
    pub(crate) fn set_node_at_slot(&mut self, slot: u32, node: Node) {
        debug_assert!(!self.slots[slot as usize].dead);
        self.slots[slot as usize].node = node;
    }

    /// Unlinks the index entry pointing at `slot` (keyed by the slot's
    /// *current* content — call before rewriting it), replacing it with an
    /// explicit [`TOMB`] cell that lookups skip, inserts reuse and the
    /// next rehash purges.
    ///
    /// A slot with no entry is a no-op: a previous rewrite may have left
    /// it **shadowed** (see [`UniqueTable::insert_index_entry`]) — live,
    /// readable through its handles, but not interned.
    pub(crate) fn remove_index_entry(&mut self, slot: u32) {
        let node = self.slots[slot as usize].node;
        let gen = self.slots[slot as usize].gen;
        let h = hash_node(&node);
        let mask = self.entries.len() - 1;
        let mut pos = h as usize & mask;
        loop {
            let e = self.entries[pos];
            if e.slot == EMPTY {
                // Shadowed slot: nothing to unlink.
                return;
            }
            if e.slot == slot && e.gen == gen {
                break;
            }
            pos = (pos + 1) & mask;
        }
        self.entries[pos] = TOMB_CELL;
        self.live_entries -= 1;
        self.tombstones += 1;
        self.tombstones_created += 1;
    }

    /// Inserts an index entry for `slot`'s *current* content (call after
    /// rewriting it) and returns `true` — unless an identical live
    /// content is already interned, in which case the slot is left
    /// **shadowed** (live and readable through its handles, but not
    /// indexed; future lookups hash-cons onto the interned twin) and the
    /// call returns `false`.
    ///
    /// Shadowing exists because weight identification is
    /// tolerance-based: two canonical nodes whose weights are *nearly*
    /// proportional can rewrite — through cofactor products that snap to
    /// the same complex-table entries — into bit-identical contents. The
    /// duplicate costs a little sharing until the shadowed slot dies; it
    /// never costs correctness.
    pub(crate) fn insert_index_entry(&mut self, slot: u32) -> bool {
        if (self.live_entries + self.tombstones + 1) * 4 > self.entries.len() * 3 {
            self.rehash();
        }
        let node = self.slots[slot as usize].node;
        let gen = self.slots[slot as usize].gen;
        let h = hash_node(&node);
        let mask = self.entries.len() - 1;
        let mut pos = h as usize & mask;
        let mut first_stale: Option<usize> = None;
        loop {
            let e = self.entries[pos];
            if e.slot == EMPTY {
                break;
            }
            if e.slot == TOMB || self.slots[e.slot as usize].gen != e.gen {
                if first_stale.is_none() {
                    first_stale = Some(pos);
                }
            } else if e.hash == h && self.slots[e.slot as usize].node == node {
                return false;
            }
            pos = (pos + 1) & mask;
        }
        let entry = IndexEntry { hash: h, slot, gen };
        match first_stale {
            Some(p) => {
                self.entries[p] = entry;
                self.tombstones -= 1;
            }
            None => self.rh_insert(entry),
        }
        self.live_entries += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_tensor::Var;

    fn leaf_node(var: u32, hi: bool) -> Node {
        Node {
            var: Var(var),
            low: if hi { Edge::ZERO } else { Edge::ONE },
            high: if hi { Edge::ONE } else { Edge::ZERO },
        }
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = UniqueTable::new(usize::MAX);
        let (a, created_a) = t.get_or_insert(leaf_node(0, true)).unwrap();
        let (b, created_b) = t.get_or_insert(leaf_node(0, true)).unwrap();
        assert!(created_a);
        assert!(!created_b);
        assert_eq!(a, b);
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn sweep_bumps_generation_and_reuses_slot() {
        let mut t = UniqueTable::new(usize::MAX);
        let (a, _) = t.get_or_insert(leaf_node(0, true)).unwrap();
        assert!(t.is_live(a));
        t.begin_mark();
        t.begin_sweep();
        let (reclaimed, done) = t.sweep_step(usize::MAX);
        assert_eq!(reclaimed, 1);
        assert!(done);
        assert!(!t.is_live(a), "swept handle must be stale");
        assert_eq!(t.tombstone_count(), 1);
        // The next interning reuses the slot under a fresh generation.
        let (b, created) = t.get_or_insert(leaf_node(1, false)).unwrap();
        assert!(created);
        assert_eq!(b.idx, a.idx, "free list must hand the slot back");
        assert_ne!(b.gen, a.gen, "recycled slot must carry a new generation");
        assert!(t.is_live(b));
        assert!(!t.is_live(a));
        assert_eq!(t.allocated(), 2, "no net growth through churn");
    }

    #[test]
    fn tombstones_do_not_break_collision_runs() {
        // Force every key into one home cell's run by inserting enough
        // nodes, then sweep some and check the survivors still resolve.
        let mut t = UniqueTable::new(usize::MAX);
        let ids: Vec<NodeId> = (0..64)
            .map(|v| t.get_or_insert(leaf_node(v, true)).unwrap().0)
            .collect();
        // Mark only the even ones.
        t.begin_mark();
        let mut stack: Vec<u32> = ids.iter().step_by(2).map(|id| id.idx).collect();
        t.mark_reachable(&mut stack);
        t.begin_sweep();
        t.sweep_step(usize::MAX);
        for (v, id) in ids.iter().enumerate() {
            let (found, created) = t.get_or_insert(leaf_node(v as u32, true)).unwrap();
            if v % 2 == 0 {
                assert!(!created, "survivor {v} must still hash-cons");
                assert_eq!(found, *id);
            } else {
                assert!(created, "swept node {v} must re-intern fresh");
                assert_ne!(found, *id);
            }
        }
    }

    #[test]
    fn rehash_drops_tombstones_and_keeps_entries() {
        let mut t = UniqueTable::new(usize::MAX);
        let n = (MIN_INDEX * 3) / 4 + 8; // push past the load trigger
        let ids: Vec<NodeId> = (0..n)
            .map(|v| t.get_or_insert(leaf_node(v as u32, false)).unwrap().0)
            .collect();
        assert!(t.unique_rebuilds > 0, "load factor must have forced growth");
        for (v, id) in ids.iter().enumerate() {
            let (found, created) = t.get_or_insert(leaf_node(v as u32, false)).unwrap();
            assert!(!created);
            assert_eq!(found, *id);
        }
    }

    #[test]
    fn capacity_exhaustion_reports_table_full() {
        let mut t = UniqueTable::new(3); // terminal + two nodes
        t.get_or_insert(leaf_node(0, true)).unwrap();
        t.get_or_insert(leaf_node(1, true)).unwrap();
        let err = t.get_or_insert(leaf_node(2, true)).unwrap_err();
        assert_eq!(err.allocated, 3);
        assert_eq!(err.capacity, 3);
        // Freeing a slot makes room without growing.
        t.begin_mark();
        t.begin_sweep();
        t.sweep_step(usize::MAX);
        assert!(t.get_or_insert(leaf_node(2, true)).is_ok());
    }

    #[test]
    fn incremental_sweep_resurrects_on_lookup() {
        let mut t = UniqueTable::new(usize::MAX);
        let (a, _) = t.get_or_insert(leaf_node(0, true)).unwrap();
        let (b, _) = t.get_or_insert(leaf_node(1, true)).unwrap();
        t.begin_mark();
        t.begin_sweep();
        assert!(t.sweep_in_progress());
        // Looking `a` up mid-sweep resurrects it; `b` is never asked for.
        let (a2, created) = t.get_or_insert(leaf_node(0, true)).unwrap();
        assert!(!created);
        assert_eq!(a2, a);
        loop {
            let (_, done) = t.sweep_step(1);
            if done {
                break;
            }
        }
        assert!(t.is_live(a), "resurrected node must survive the sweep");
        assert!(!t.is_live(b), "unreferenced node must be swept");
    }

    #[test]
    fn index_entry_remove_rewrite_insert_round_trip() {
        let mut t = UniqueTable::new(usize::MAX);
        let ids: Vec<NodeId> = (0..16)
            .map(|v| t.get_or_insert(leaf_node(v, true)).unwrap().0)
            .collect();
        // Rewrite slot 3's content in place, as a level swap would.
        let target = ids[3];
        t.remove_index_entry(target.idx);
        t.set_node_at_slot(target.idx, leaf_node(100, false));
        t.insert_index_entry(target.idx);
        // The handle survives the rewrite and names the new content.
        assert!(t.is_live(target));
        assert_eq!(t.node(target).var, Var(100));
        // The new content hash-conses onto the rewritten slot…
        let (found, created) = t.get_or_insert(leaf_node(100, false)).unwrap();
        assert!(!created);
        assert_eq!(found, target);
        // …the old content is gone from the index…
        let (_, recreated) = t.get_or_insert(leaf_node(3, true)).unwrap();
        assert!(recreated, "removed entry must not resolve the old content");
        // …and every untouched entry still resolves.
        for (v, id) in ids.iter().enumerate() {
            if v == 3 {
                continue;
            }
            let (found, created) = t.get_or_insert(leaf_node(v as u32, true)).unwrap();
            assert!(!created);
            assert_eq!(found, *id);
        }
    }

    #[test]
    fn probe_histogram_records_lookups() {
        let mut t = UniqueTable::new(usize::MAX);
        for v in 0..32 {
            t.get_or_insert(leaf_node(v, true)).unwrap();
        }
        assert!(t.probe_hist.total() >= 32);
        // Known occupancy, fresh table: every lookup touched at least its
        // home cell, so the median probe length must be at least 1.
        assert!(t.probe_hist.p50() >= 1);
    }
}
