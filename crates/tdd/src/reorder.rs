//! Dynamic variable reordering: the adjacent-level swap primitive and
//! Rudell-style sifting.
//!
//! # Why an *in-place* swap is possible at all
//!
//! A TDD's denotation is read off its structure alone — [`crate::TddManager::eval`]
//! walks edges and multiplies weights, never consulting the variable
//! order. So reordering does not need to touch any handle held outside
//! the manager: it is enough to rewrite the *contents* of the affected
//! slots so that every stored node is again canonical under the new
//! order, while each slot keeps denoting the same tensor. Handles
//! (slot index + generation) survive unchanged, which is what lets the
//! GC schedule a sifting pass in the middle of a fixpoint computation
//! without any relocation protocol.
//!
//! Swapping the variables `x` (level ℓ) and `y` (level ℓ+1) only
//! affects nodes labelled `x` that have a `y`-labelled successor:
//!
//! * `x`-nodes with no `y`-successor keep their content — their
//!   children sit strictly below both levels, so the content is still
//!   ordered and still canonical (weights are untouched).
//! * `y`-nodes keep their content — their children sat strictly below
//!   level ℓ+1 in the old order and none of them is labelled `x`, so
//!   they still sit strictly below `y`'s new level ℓ.
//! * An `x`-node with a `y`-successor is rewritten through its four
//!   cofactors `F(x=a, y=b)` into a `y`-labelled node over two fresh
//!   `x`-nodes — the textbook BDD swap, plus weight bookkeeping.
//!
//! The weight bookkeeping is where TDDs differ from BDDs. The rewritten
//! content is stored **verbatim** — `(1−y)·lo + y·hi` is exactly the
//! slot's old tensor by construction, so denotation is preserved
//! unconditionally. Canonicity is the subtle part: the recomputed
//! leading weight is 1 whenever the magnitude maximum over the four
//! cofactor products is attained unambiguously, because the leading
//! weight of a canonical diagram is that maximum and a maximum commutes
//! with re-grouping the cofactor tree. On an **exact magnitude tie**,
//! though, [`crate::TddManager::make_node`]'s pivot falls back to branch
//! position (it must — a scale-equivariant pivot cannot be a pure
//! function of the value set, and ops rely on equivariance), and the
//! re-grouped tie can land on the other ex-aequo value. Such a node
//! stays correct but sits in a non-canonical normal form until it is
//! next rebuilt; every occurrence is counted in
//! [`crate::ManagerStats::reorder_residuals`]. Swapping the same pair
//! back restores the original content bit-for-bit in exact arithmetic:
//! the inverse rebuild re-groups the cofactors the original way, and
//! equivariance makes each branch's pivot collapse back to the original
//! branch weight.
//!
//! Weight interning is tolerance-based, and that bends both guarantees
//! at the margin. Two *distinct* canonical nodes can rewrite — through
//! cofactor products that snap to the same interned weights — into
//! bit-identical contents; the second one is then left **shadowed**
//! (live and readable through its handles, but not indexed — see
//! [`crate::ManagerStats::reorder_shadowed`]), which costs a little
//! sharing and never correctness. And a path whose product snapped onto
//! a tolerance-close twin comes back within tolerance of — rather than
//! identical to — its original weights when swapped back.
//!
//! # Sifting
//!
//! [`TddManager::sift_var`] moves one variable through every level and
//! settles it at the size-minimal one (Rudell's algorithm), abandoning a
//! direction once the live set grows past a configurable factor of its
//! starting size. [`TddManager::sift_all`] sifts every populated
//! variable, densest first — the variables touching the most nodes have
//! the most to give — and collects between variables so swap garbage
//! does not distort the size measurements. The GC couples this to its
//! safepoint schedule (see [`crate::ReorderPolicy`]): collect first,
//! then sift while the live set is minimal.

use qits_tensor::Var;

use crate::gc::EdgeHolder;
use crate::hash::FastMap;
use crate::manager::TddManager;
use crate::node::{Edge, Node};

impl TddManager {
    /// Installs an explicit variable order (top of the diagram first).
    ///
    /// Variables not listed are still usable: they are registered lazily
    /// next to their qubit's block the first time they appear (see the
    /// `order` module). Installing is only allowed while the node store
    /// is empty — existing diagrams are canonical under the *current*
    /// order, and silently reinterpreting them would corrupt every held
    /// handle. Use [`TddManager::sift_all`] to change the order of a
    /// populated manager.
    ///
    /// # Panics
    ///
    /// Panics if any node exists, if `order` contains duplicates, or if
    /// it names the terminal sentinel.
    pub fn install_order(&mut self, order: &[Var]) {
        assert_eq!(
            self.unique.occupied(),
            0,
            "install_order requires an empty node store"
        );
        self.order.install(order);
    }

    /// The current explicit variable order (top first), or `None` while
    /// the manager is still on the natural order.
    pub fn var_order(&self) -> Option<&[Var]> {
        self.order.as_slice()
    }

    /// Exchanges the variables at `level` and `level + 1`, rewriting the
    /// affected nodes in place. Every handle held on the manager remains
    /// valid and keeps denoting the same tensor.
    ///
    /// On the first call under the natural order, the order is
    /// materialised from the variables currently in the store (plus any
    /// lazily registered earlier), so `level` addresses a position in
    /// [`TddManager::var_order`].
    ///
    /// Operation caches are cleared: cached results stay *sound* across
    /// a swap (handles keep their denotation) but may no longer be
    /// canonical under the new order, and a stale-shaped hit would
    /// defeat hash-consed equality.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid level or if an incremental
    /// sweep is pending (finish the collection first — the swap must not
    /// observe half-swept slots).
    pub fn swap_adjacent_levels(&mut self, level: u32) {
        assert!(
            !self.unique.sweep_in_progress(),
            "swap_adjacent_levels during an unfinished sweep"
        );
        self.ensure_explicit_order();
        let n = self.order.len() as u32;
        assert!(
            level.checked_add(1).is_some_and(|l| l < n),
            "swap level {level} out of range for {n} ordered variables"
        );
        self.swap_adjacent(level);
        self.caches.clear();
    }

    /// Sifts `var` to its locally node-count-optimal level (Rudell):
    /// swap it down to the bottom, back up to the top, then settle at
    /// the best level seen. A direction is abandoned once the live node
    /// count exceeds `growth_cap` times its starting value. `extra`
    /// edges count as live alongside the root registry.
    ///
    /// Returns `(nodes_before, nodes_after)` live counts. Caches are
    /// cleared (see [`TddManager::swap_adjacent_levels`]).
    ///
    /// # Panics
    ///
    /// Panics if an incremental sweep is pending.
    pub fn sift_var(&mut self, var: Var, growth_cap: f64, extra: &[Edge]) -> (usize, usize) {
        assert!(
            !self.unique.sweep_in_progress(),
            "sift_var during an unfinished sweep"
        );
        self.ensure_explicit_order();
        // Sifting an unseen variable is a no-op, not a registration.
        if self.order.as_slice().is_none_or(|s| !s.contains(&var)) {
            let live = self.live_node_count(extra);
            return (live, live);
        }
        let before = self.live_node_count(extra);
        self.sift_one(var, growth_cap, extra, before);
        self.caches.clear();
        (before, self.live_node_count(extra))
    }

    /// One full sifting pass: every populated variable is sifted in
    /// descending order of node population, with a retaining collection
    /// between variables so swap garbage does not distort the size
    /// measurements. `holders` are the live-set sources, exactly as for
    /// [`TddManager::collect_retaining`].
    ///
    /// This is what the GC's [`crate::ReorderPolicy`] schedule runs at a
    /// safepoint, right after a full collection. Caches are cleared.
    ///
    /// # Panics
    ///
    /// Panics if an incremental sweep is pending.
    pub fn sift_all(&mut self, holders: &[&dyn EdgeHolder], growth_cap: f64) {
        assert!(
            !self.unique.sweep_in_progress(),
            "sift_all during an unfinished sweep"
        );
        let mut extra: Vec<Edge> = Vec::new();
        for h in holders {
            h.gc_edges(&mut |e| extra.push(e));
        }
        let before = self.live_node_count(&extra);
        self.stats.nodes_before_reorder = before;
        if self.unique.occupied() > 0 {
            self.ensure_explicit_order();
            // Densest variable first: it touches the most nodes, so it
            // has the most reduction to offer and unlocks moves for the
            // rest.
            let mut population: FastMap<Var, u64> = FastMap::default();
            self.unique.for_each_live_slot(|_, n| {
                *population.entry(n.var).or_insert(0) += 1;
            });
            let mut by_density: Vec<(u64, Var)> =
                population.into_iter().map(|(v, c)| (c, v)).collect();
            by_density.sort_unstable_by(|a, b| b.cmp(a));
            for (_, var) in by_density {
                let start = self.live_node_count(&extra);
                self.sift_one(var, growth_cap, &extra, start);
                self.collect_retaining(holders);
            }
        }
        self.stats.nodes_after_reorder = self.live_node_count(&extra);
        self.stats.sift_passes += 1;
        self.caches.clear();
    }

    /// Materialises an explicit order from everything seen so far, so
    /// levels become addressable positions. No-op once explicit.
    fn ensure_explicit_order(&mut self) {
        if !self.order.is_natural() {
            return;
        }
        let mut vars = Vec::new();
        self.unique.for_each_live_slot(|_, n| vars.push(n.var));
        self.order.materialize(vars);
    }

    /// Rudell's sift of one variable, settling at the best level seen.
    /// `start_size` is the live count at entry (already measured by the
    /// caller). Does not touch caches — callers do.
    fn sift_one(&mut self, var: Var, growth_cap: f64, extra: &[Edge], start_size: usize) {
        let n = self.order.len() as u32;
        if n < 2 {
            return;
        }
        let start = self.order.peek_level(var);
        let cap = (start_size as f64 * growth_cap.max(1.0)).ceil() as usize;
        let mut best = (start_size, start);
        let mut cur = start;
        // Down to the bottom…
        while cur + 1 < n {
            self.swap_adjacent(cur);
            cur += 1;
            let size = self.live_node_count(extra);
            if size < best.0 {
                best = (size, cur);
            }
            if size > cap {
                break;
            }
        }
        // …back up through the start to the top…
        while cur > 0 {
            self.swap_adjacent(cur - 1);
            cur -= 1;
            let size = self.live_node_count(extra);
            if size < best.0 {
                best = (size, cur);
            }
            if size > cap && cur < best.1 {
                break;
            }
        }
        // …and settle at the winner.
        while cur < best.1 {
            self.swap_adjacent(cur);
            cur += 1;
        }
        while cur > best.1 {
            self.swap_adjacent(cur - 1);
            cur -= 1;
        }
        debug_assert_eq!(self.order.peek_level(var), best.1);
    }

    /// The primitive: exchange levels `level` and `level + 1` in the
    /// order map and rewrite every node the exchange de-canonicalises.
    ///
    /// Requires an explicit order and a valid `level` (callers check).
    pub(crate) fn swap_adjacent(&mut self, level: u32) {
        let x = self.order.var_at(level);
        let y = self.order.var_at(level + 1);
        // Only x-labelled nodes with a y-labelled successor change
        // content; snapshot them before any rewriting. (Label tests are
        // order-independent, so snapshotting before or after the order
        // flip is equivalent.)
        let mut queue = Vec::new();
        for slot in self.unique.live_slots_with_var(x) {
            let node = self.unique.node_at_slot(slot);
            let low_y = !node.low.node.is_terminal() && self.var_of(node.low.node) == y;
            let high_y = !node.high.node.is_terminal() && self.var_of(node.high.node) == y;
            if low_y || high_y {
                queue.push(slot);
            }
        }
        self.order.swap_levels(level);
        for slot in queue {
            let old = self.unique.node_at_slot(slot);
            // Four cofactors F(x=a, y=b). A branch that skips y yields
            // itself twice (cofactors handles both cases; y's level is
            // already ℓ, above every branch root).
            let (f00, f01) = self.cofactors(old.low, y);
            let (f10, f11) = self.cofactors(old.high, y);
            // Rebuild under the new order: y on top of two x-nodes.
            // make_node only creates x-labelled nodes whose successors
            // sit below both levels, so it can never collide with a
            // queued (not yet rewritten) slot — those all hold a
            // y-labelled successor.
            let lo = self.make_node(x, f00, f10);
            let hi = self.make_node(x, f01, f11);
            // The rewritten content is stored verbatim — denotation is
            // exact either way; its leading weight is 1 except when an
            // exact magnitude tie re-grouped onto the other value (see
            // the module docs), and `lo == hi` (a redundant node — only
            // reachable when tolerance snapping identifies the two
            // rebuilt branches) likewise stays correct but non-canonical
            // until next rebuilt. Count both as residuals.
            if lo == hi || !self.pivot_is_one(lo, hi) {
                self.stats.reorder_residuals += 1;
            }
            // The index keys on content: unlink under the old content,
            // rewrite, relink under the new. The relink can find an
            // identical content already interned (tolerance snapping
            // again); the slot is then left shadowed — see
            // `UniqueTable::insert_index_entry`.
            self.unique.remove_index_entry(slot);
            self.unique.set_node_at_slot(
                slot,
                Node {
                    var: y,
                    low: lo,
                    high: hi,
                },
            );
            if !self.unique.insert_index_entry(slot) {
                self.stats.reorder_shadowed += 1;
            }
        }
        self.stats.swaps += 1;
    }

    /// Whether [`TddManager::make_node`]'s pivot over two branch weights
    /// is exactly the interned one — the canonicity residual check of
    /// the swap (must mirror the rule in `make_node`).
    fn pivot_is_one(&self, lo: Edge, hi: Edge) -> bool {
        use crate::cnum::CIdx;
        let pivot = if lo.weight.is_zero() {
            hi.weight
        } else if hi.weight.is_zero() {
            lo.weight
        } else {
            let (al, ah) = (
                self.weight_value(lo.weight).abs(),
                self.weight_value(hi.weight).abs(),
            );
            if al >= ah {
                lo.weight
            } else {
                hi.weight
            }
        };
        pivot == CIdx::ONE
    }
}

#[cfg(test)]
mod tests {
    use qits_num::Cplx;
    use qits_tensor::{Tensor, Var};

    use crate::manager::TddManager;
    use crate::node::Edge;

    fn sample_tensor(seed: u64) -> Tensor {
        // Three binary indices, deterministic pseudo-random amplitudes.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let amps: Vec<Cplx> = (0..8).map(|_| Cplx::new(next(), next())).collect();
        Tensor::new(vec![Var(0), Var(1), Var(2)], amps)
    }

    fn vars3() -> [Var; 3] {
        [Var(0), Var(1), Var(2)]
    }

    #[test]
    fn install_order_reorders_construction() {
        let mut m = TddManager::new();
        m.install_order(&[Var(2), Var(0), Var(1)]);
        assert_eq!(m.var_order(), Some(&[Var(2), Var(0), Var(1)][..]));
        let t = sample_tensor(1);
        let e = m.from_tensor(&t);
        assert!(m.to_tensor(e, &vars3()).approx_eq(&t));
        assert_eq!(m.level_of(Var(2)), 0, "installed order governs levels");
    }

    #[test]
    #[should_panic(expected = "empty node store")]
    fn install_order_rejects_populated_manager() {
        let mut m = TddManager::new();
        let _ = m.from_tensor(&sample_tensor(2));
        m.install_order(&[Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn swap_preserves_denotation_and_handles() {
        let mut m = TddManager::new();
        let t = sample_tensor(3);
        let e = m.from_tensor(&t);
        let nodes_before = m.node_count(e);
        m.swap_adjacent_levels(0);
        assert_eq!(
            m.var_order(),
            Some(&[Var(1), Var(0), Var(2)][..]),
            "order map must flip"
        );
        // Same handle, same tensor, under the flipped order.
        assert!(m.to_tensor(e, &vars3()).approx_eq(&t));
        m.swap_adjacent_levels(1);
        m.swap_adjacent_levels(0);
        assert!(m.to_tensor(e, &vars3()).approx_eq(&t));
        let _ = nodes_before;
    }

    #[test]
    fn swap_twice_restores_the_exact_diagram() {
        let mut m = TddManager::new();
        let t = sample_tensor(4);
        let e = m.from_tensor(&t);
        let snapshot: Vec<(Var, Edge, Edge)> = {
            let n = m.node(e.node);
            vec![(n.var, n.low, n.high)]
        };
        m.swap_adjacent_levels(1);
        m.swap_adjacent_levels(1);
        assert_eq!(m.var_order(), Some(&vars3()[..]), "order restored");
        let n = m.node(e.node);
        assert_eq!(
            (n.var, n.low, n.high),
            snapshot[0],
            "the root node must be bit-identical after swap∘swap"
        );
    }

    #[test]
    fn swap_keeps_canonicity_fresh_builds_hit_rewritten_slots() {
        let mut m = TddManager::new();
        let t = sample_tensor(5);
        let e = m.from_tensor(&t);
        m.swap_adjacent_levels(0);
        // Rebuilding the same tensor from scratch (from_tensor splits in
        // the *global* order) must hash-cons onto the rewritten diagram,
        // edge for edge.
        let rebuilt = m.from_tensor(&t);
        assert_eq!(e, rebuilt, "rewritten store must stay canonical");
    }

    #[test]
    fn swap_counts_and_residuals() {
        let mut m = TddManager::new();
        let _e = m.from_tensor(&sample_tensor(6));
        m.swap_adjacent_levels(0);
        m.swap_adjacent_levels(1);
        let s = m.stats();
        assert_eq!(s.swaps, 2);
        assert_eq!(
            s.reorder_residuals, 0,
            "total-order pivot leaves no residual"
        );
    }

    #[test]
    fn sift_var_settles_and_preserves_meaning() {
        let mut m = TddManager::new();
        let t = sample_tensor(7);
        let e = m.from_tensor(&t);
        let (before, after) = m.sift_var(Var(1), 1.5, &[e]);
        assert!(after <= before, "sifting never settles above the start");
        assert!(m.to_tensor(e, &vars3()).approx_eq(&t));
    }

    #[test]
    fn sift_all_reduces_an_interleaving_sensitive_function() {
        // f = (x0 ∧ x3) ∨ (x1 ∧ x4) ∨ (x2 ∧ x5): linear-size under the
        // interleaved order x0 x3 x1 x4 x2 x5, exponential-ish under the
        // blocked natural order — the classic DVO demonstration.
        let mut m = TddManager::new();
        let n = 6u32;
        let mut f = Edge::ZERO;
        for i in 0..3 {
            let a = m.selector(Var(i), true);
            let b = m.selector(Var(i + 3), true);
            let pair = m.contract(a, b, &[]);
            // OR via inclusion–exclusion on 0/1 indicators:
            // f ∨ g = f + g − f·g.
            let fg = m.contract(f, pair, &[]);
            let neg = m.scale(fg, -Cplx::ONE);
            let sum = m.add(f, pair);
            f = m.add(sum, neg);
        }
        let root = m.protect(f);
        let before = m.live_node_count(&[]);
        m.sift_all(&[], 1.5);
        let after = m.live_node_count(&[]);
        assert!(
            after < before,
            "sifting must shrink the blocked order ({before} -> {after})"
        );
        let s = m.stats();
        assert_eq!(s.sift_passes, 1);
        assert!(s.swaps > 0);
        assert_eq!(s.nodes_before_reorder, before);
        assert_eq!(s.nodes_after_reorder, after);
        // Meaning is untouched: spot-check all 64 assignments.
        let vars: Vec<Var> = (0..n).map(Var).collect();
        for bits in 0..64u32 {
            let assignment: std::collections::BTreeMap<Var, bool> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, bits >> i & 1 == 1))
                .collect();
            let expect = (0..3).any(|i| bits >> i & 1 == 1 && bits >> (i + 3) & 1 == 1);
            let got = m.eval(f, &assignment);
            assert!(
                got.approx_eq(if expect { Cplx::ONE } else { Cplx::ZERO }),
                "assignment {bits:06b}: got {got:?}"
            );
        }
        m.unprotect(root);
    }
}
