//! The variable-order indirection layer: `Var` → level.
//!
//! Every structural decision a TDD makes — which variable labels a node,
//! which successor a cofactor picks, where a recursion branches — is taken
//! relative to a **global variable order**. Historically that order was the
//! natural `u32` order of [`Var`] itself, hard-coded into every comparison.
//! This module makes the order a first-class, *mutable* property of the
//! manager: a [`VarOrder`] maps each variable to a **level** (0 = top), and
//! all structural comparisons go through it. Dynamic variable reordering
//! (the adjacent-level swap and sifting passes in the manager) then only
//! has to permute this map and rewrite the nodes at the two affected
//! levels.
//!
//! # Natural mode
//!
//! A fresh order is **natural**: no map is materialised and the level of a
//! variable is simply its raw value, so the indirection costs nothing until
//! a custom order is installed. The first [`VarOrder::install`] (a static
//! ordering heuristic at engine build) or [`VarOrder::materialize`] (the
//! first sifting pass) switches to explicit levels.
//!
//! # Late registration
//!
//! Variables are created lazily by circuit tensorization — gate legs mint
//! fresh wire positions mid-run — so an installed order must stay total
//! over variables it has never seen. An unregistered variable is inserted
//! next to its qubit's existing block (right after its natural predecessor
//! on the same qubit, or right before its natural successor), falling back
//! to its natural rank among all registered variables. This keeps
//! qubit-local structure intact under heuristic orders while remaining
//! fully deterministic.

use qits_tensor::Var;

use crate::hash::FastMap;
use crate::node::TERMINAL_VAR;

/// Level assigned to the terminal sentinel: below every real variable.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// A total order on variables, either the natural `Var` order or an
/// explicit level permutation (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct VarOrder {
    /// `None` until an order is installed or materialised; natural mode.
    levels: Option<Levels>,
}

#[derive(Debug, Default)]
struct Levels {
    var2level: FastMap<Var, u32>,
    level2var: Vec<Var>,
}

impl Levels {
    /// Rewrites `var2level` for every level in `from..`.
    fn renumber_from(&mut self, from: usize) {
        for (l, &v) in self.level2var.iter().enumerate().skip(from) {
            self.var2level.insert(v, l as u32);
        }
    }
}

impl VarOrder {
    /// Whether the order is still the natural `Var` order with no map
    /// materialised.
    #[inline]
    pub(crate) fn is_natural(&self) -> bool {
        self.levels.is_none()
    }

    /// Number of registered variables (0 in natural mode).
    pub(crate) fn len(&self) -> usize {
        self.levels.as_ref().map_or(0, |l| l.level2var.len())
    }

    /// The level of `v`, registering it if the order has never seen it.
    /// In natural mode this is the raw variable value.
    #[inline]
    pub(crate) fn level_of(&mut self, v: Var) -> u32 {
        if v == TERMINAL_VAR {
            return TERMINAL_LEVEL;
        }
        match &self.levels {
            None => v.0,
            Some(l) => match l.var2level.get(&v) {
                Some(&lvl) => lvl,
                None => self.register(v),
            },
        }
    }

    /// The level of `v` without registering it. Natural mode: raw value.
    ///
    /// # Panics
    ///
    /// Panics if an explicit order is active and `v` is unregistered.
    pub(crate) fn peek_level(&self, v: Var) -> u32 {
        if v == TERMINAL_VAR {
            return TERMINAL_LEVEL;
        }
        match &self.levels {
            None => v.0,
            Some(l) => *l
                .var2level
                .get(&v)
                .unwrap_or_else(|| panic!("variable {v} not registered in the order")),
        }
    }

    /// The variable at `level`.
    ///
    /// # Panics
    ///
    /// Panics in natural mode or if `level` is out of range.
    pub(crate) fn var_at(&self, level: u32) -> Var {
        self.levels
            .as_ref()
            .expect("no explicit order installed")
            .level2var[level as usize]
    }

    /// The installed level → variable table, or `None` in natural mode.
    pub(crate) fn as_slice(&self) -> Option<&[Var]> {
        self.levels.as_ref().map(|l| l.level2var.as_slice())
    }

    /// Installs an explicit order: `order[i]` gets level `i`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate variables or on the terminal sentinel.
    pub(crate) fn install(&mut self, order: &[Var]) {
        let mut levels = Levels::default();
        for (i, &v) in order.iter().enumerate() {
            assert!(v != TERMINAL_VAR, "cannot order the terminal sentinel");
            let prev = levels.var2level.insert(v, i as u32);
            assert!(prev.is_none(), "duplicate variable {v} in order");
            levels.level2var.push(v);
        }
        self.levels = Some(levels);
    }

    /// Switches from natural mode to explicit levels over `vars` (sorted
    /// and deduplicated here), preserving the natural order. No-op if an
    /// explicit order is already active.
    pub(crate) fn materialize<I: IntoIterator<Item = Var>>(&mut self, vars: I) {
        if self.levels.is_some() {
            return;
        }
        let mut sorted: Vec<Var> = vars.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        self.install(&sorted);
    }

    /// Swaps the variables at `level` and `level + 1`.
    ///
    /// # Panics
    ///
    /// Panics in natural mode or if `level + 1` is out of range.
    pub(crate) fn swap_levels(&mut self, level: u32) {
        let l = self.levels.as_mut().expect("no explicit order installed");
        let (a, b) = (level as usize, level as usize + 1);
        l.level2var.swap(a, b);
        l.var2level.insert(l.level2var[a], level);
        l.var2level.insert(l.level2var[b], level + 1);
    }

    /// Registers an unseen variable under an explicit order (see the
    /// module docs for the placement rule) and returns its level.
    fn register(&mut self, v: Var) -> u32 {
        let l = self
            .levels
            .as_mut()
            .expect("register only under an explicit order");
        // Prefer staying inside the qubit's existing block: right after
        // the natural predecessor on the same qubit, or right before the
        // natural successor.
        let mut pred: Option<(usize, Var)> = None;
        let mut succ: Option<(usize, Var)> = None;
        let mut natural_rank = 0usize;
        for (lvl, &w) in l.level2var.iter().enumerate() {
            if w < v {
                natural_rank += 1;
            }
            if w.qubit() == v.qubit() {
                if w < v && pred.is_none_or(|(_, pw)| w > pw) {
                    pred = Some((lvl, w));
                }
                if w > v && succ.is_none_or(|(_, sw)| w < sw) {
                    succ = Some((lvl, w));
                }
            }
        }
        let at = match (pred, succ) {
            (Some((lvl, _)), _) => lvl + 1,
            (None, Some((lvl, _))) => lvl,
            (None, None) => natural_rank,
        };
        l.level2var.insert(at, v);
        l.renumber_from(at);
        at as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_mode_levels_are_raw_values() {
        let mut o = VarOrder::default();
        assert!(o.is_natural());
        assert_eq!(o.level_of(Var(7)), 7);
        assert_eq!(o.level_of(TERMINAL_VAR), TERMINAL_LEVEL);
        assert_eq!(o.peek_level(Var(3)), 3);
        assert_eq!(o.len(), 0);
    }

    #[test]
    fn install_assigns_levels_in_sequence() {
        let mut o = VarOrder::default();
        o.install(&[Var(5), Var(1), Var(9)]);
        assert!(!o.is_natural());
        assert_eq!(o.level_of(Var(5)), 0);
        assert_eq!(o.level_of(Var(1)), 1);
        assert_eq!(o.level_of(Var(9)), 2);
        assert_eq!(o.var_at(0), Var(5));
        assert_eq!(o.as_slice(), Some(&[Var(5), Var(1), Var(9)][..]));
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn install_rejects_duplicates() {
        let mut o = VarOrder::default();
        o.install(&[Var(1), Var(1)]);
    }

    #[test]
    fn swap_levels_permutes_the_map() {
        let mut o = VarOrder::default();
        o.install(&[Var(0), Var(1), Var(2)]);
        o.swap_levels(1);
        assert_eq!(o.as_slice(), Some(&[Var(0), Var(2), Var(1)][..]));
        assert_eq!(o.level_of(Var(2)), 1);
        assert_eq!(o.level_of(Var(1)), 2);
        o.swap_levels(1);
        assert_eq!(o.level_of(Var(1)), 1);
    }

    #[test]
    fn materialize_preserves_natural_order() {
        let mut o = VarOrder::default();
        o.materialize([Var(9), Var(2), Var(2), Var(5)]);
        assert_eq!(o.as_slice(), Some(&[Var(2), Var(5), Var(9)][..]));
        // Materialize again is a no-op.
        o.materialize([Var(100)]);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn late_registration_lands_next_to_its_qubit_block() {
        let mut o = VarOrder::default();
        // Qubit order 1, 0 with two wires each.
        let (k0, r0) = (Var::wire(0, 0), Var::wire(0, 1));
        let (k1, r1) = (Var::wire(1, 0), Var::wire(1, 1));
        o.install(&[k1, r1, k0, r0]);
        // A later wire of qubit 1 must join qubit 1's block, not sort
        // after qubit 0 naturally.
        let w = Var::wire(1, 5);
        assert_eq!(o.level_of(w), 2, "after its same-qubit predecessor");
        assert_eq!(o.as_slice(), Some(&[k1, r1, w, k0, r0][..]));
        // An earlier wire of qubit 0 slots in before its successor.
        let z = Var::wire(0, 0);
        assert_eq!(o.level_of(z), 3, "already registered: unchanged");
        // Registration is idempotent.
        assert_eq!(o.level_of(w), 2);
        assert_eq!(o.len(), 5);
    }

    #[test]
    fn late_registration_falls_back_to_natural_rank() {
        let mut o = VarOrder::default();
        o.install(&[Var::wire(2, 0), Var::wire(0, 0)]);
        // Qubit 1 has no block yet: natural rank puts it after qubit 0's
        // variables and before qubit 2's — one variable is smaller.
        assert_eq!(o.level_of(Var::wire(1, 0)), 1);
        assert_eq!(
            o.as_slice(),
            Some(&[Var::wire(2, 0), Var::wire(1, 0), Var::wire(0, 0)][..])
        );
    }
}
