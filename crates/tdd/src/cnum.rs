//! Interned complex numbers for TDD edge weights.
//!
//! Canonicity of decision diagrams requires that "the same" weight always
//! compares equal. Floating-point arithmetic would break that, so — like
//! mature DD packages — `qits-tdd` stores every weight once in a
//! [`ComplexTable`] and refers to it by a [`CIdx`]. Lookups are
//! tolerance-based: any value within the table's tolerance of an existing
//! entry is snapped to it. Node hashing and equality then operate on plain
//! `u32`s and are exact.

use qits_num::{Cplx, DEFAULT_TOLERANCE};

use crate::hash::FastMap;

/// Handle to an interned complex value in a [`ComplexTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CIdx(pub(crate) u32);

impl CIdx {
    /// The interned value `0`, present in every table.
    pub const ZERO: CIdx = CIdx(0);
    /// The interned value `1`, present in every table.
    pub const ONE: CIdx = CIdx(1);

    /// Whether this is the interned zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == CIdx::ZERO
    }

    /// Whether this is the interned one.
    #[inline]
    pub fn is_one(self) -> bool {
        self == CIdx::ONE
    }
}

/// A tolerance-bucketed interning table for complex numbers.
///
/// Values are bucketed on a grid of `2 * tolerance`; a lookup inspects the
/// 3x3 neighbourhood of the candidate's bucket, so any stored value within
/// `tolerance` (in both components) is found. The first match wins, which
/// keeps snapping deterministic.
///
/// # Example
///
/// ```
/// use qits_num::Cplx;
/// use qits_tdd::ComplexTable;
///
/// let mut t = ComplexTable::new();
/// let a = t.intern(Cplx::new(0.5, 0.0));
/// let b = t.intern(Cplx::new(0.5 + 1e-14, 0.0));
/// assert_eq!(a, b); // snapped to the same entry
/// ```
#[derive(Debug)]
pub struct ComplexTable {
    values: Vec<Cplx>,
    buckets: FastMap<(i64, i64), Vec<u32>>,
    tol: f64,
    grid: f64,
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ComplexTable {
    /// Creates a table with the workspace default tolerance.
    pub fn new() -> Self {
        Self::with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Creates a table with a custom tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn with_tolerance(tol: f64) -> Self {
        assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
        let mut table = ComplexTable {
            values: Vec::with_capacity(1024),
            buckets: FastMap::default(),
            tol,
            grid: 2.0 * tol,
        };
        let zero = table.push(Cplx::ZERO);
        debug_assert_eq!(zero, CIdx::ZERO);
        let one = table.push(Cplx::ONE);
        debug_assert_eq!(one, CIdx::ONE);
        table
    }

    /// The tolerance used for snapping.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds only the mandatory 0 and 1. Practically
    /// never true after any work; provided for completeness.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 2
    }

    /// The complex value behind a handle.
    #[inline]
    pub fn value(&self, idx: CIdx) -> Cplx {
        self.values[idx.0 as usize]
    }

    /// Interns `c`, snapping to an existing entry within tolerance.
    ///
    /// Values within tolerance of zero always intern to [`CIdx::ZERO`] —
    /// this single rule is what makes "zero edge" detection exact everywhere
    /// else in the crate.
    pub fn intern(&mut self, c: Cplx) -> CIdx {
        if c.is_zero_with(self.tol) {
            return CIdx::ZERO;
        }
        let (bx, by) = self.bucket_of(c);
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                if let Some(entries) = self.buckets.get(&(bx + dx, by + dy)) {
                    for &i in entries {
                        if self.values[i as usize].approx_eq_with(c, self.tol) {
                            return CIdx(i);
                        }
                    }
                }
            }
        }
        self.push(c)
    }

    fn bucket_of(&self, c: Cplx) -> (i64, i64) {
        (
            (c.re / self.grid).round() as i64,
            (c.im / self.grid).round() as i64,
        )
    }

    fn push(&mut self, c: Cplx) -> CIdx {
        let idx = u32::try_from(self.values.len()).expect("complex table overflow");
        self.values.push(c);
        let key = self.bucket_of(c);
        self.buckets.entry(key).or_default().push(idx);
        CIdx(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_preinterned() {
        let mut t = ComplexTable::new();
        assert_eq!(t.intern(Cplx::ZERO), CIdx::ZERO);
        assert_eq!(t.intern(Cplx::ONE), CIdx::ONE);
        assert!(t.value(CIdx::ZERO).approx_eq(Cplx::ZERO));
        assert!(t.value(CIdx::ONE).approx_eq(Cplx::ONE));
    }

    #[test]
    fn snaps_within_tolerance() {
        let mut t = ComplexTable::new();
        let a = t.intern(Cplx::new(0.25, -0.75));
        let b = t.intern(Cplx::new(0.25 + 5e-11, -0.75 - 5e-11));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_beyond_tolerance() {
        let mut t = ComplexTable::new();
        let a = t.intern(Cplx::new(0.25, 0.0));
        let b = t.intern(Cplx::new(0.25 + 1e-6, 0.0));
        assert_ne!(a, b);
    }

    #[test]
    fn near_zero_is_zero() {
        let mut t = ComplexTable::new();
        assert!(t.intern(Cplx::new(1e-12, -1e-12)).is_zero());
        assert!(!t.intern(Cplx::new(1e-3, 0.0)).is_zero());
    }

    #[test]
    fn bucket_boundary_values_still_snap() {
        // Values straddling a bucket boundary must still be identified.
        let mut t = ComplexTable::with_tolerance(1e-10);
        let grid = 2e-10;
        let x = 3.0 * grid + 0.49 * grid; // just below a boundary
        let a = t.intern(Cplx::new(x, 0.0));
        let b = t.intern(Cplx::new(x + 0.9e-10, 0.0)); // crosses the boundary
        assert_eq!(a, b);
    }

    #[test]
    fn many_distinct_values() {
        let mut t = ComplexTable::new();
        let n0 = t.len();
        for i in 0..100 {
            t.intern(Cplx::new(i as f64 * 0.1, 0.0));
        }
        // 0.0 snaps to the pre-interned ZERO and 1.0 to ONE.
        assert_eq!(t.len(), n0 + 98);
    }
}
