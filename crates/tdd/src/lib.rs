//! Tensor Decision Diagrams (TDDs).
//!
//! A TDD represents a tensor over binary indices as a rooted DAG: every
//! internal node is labelled with an index ([`qits_tensor::Var`]), has a
//! *low* (index = 0, drawn blue in the paper) and a *high* (index = 1, red)
//! successor edge, and every edge carries a complex weight. The value of the
//! tensor at an assignment is the product of the weights along the matching
//! path from the root edge to the terminal node. With a fixed index order
//! and the normalisation discipline implemented by [`TddManager::make_node`],
//! every tensor has a *unique* TDD — the canonicity that makes symbolic
//! model checking possible, exactly as BDDs do for Boolean functions.
//!
//! This crate is a from-scratch implementation of the data structure from
//! Hong et al., *"A Tensor Network Based Decision Diagram for Representation
//! of Quantum Circuits"* (TODAES 2022), which the DATE 2025 image-computation
//! paper builds on. It provides:
//!
//! * a tolerance-bucketed **complex table** ([`ComplexTable`]) interning edge
//!   weights, so node hashing/equality is exact while arithmetic is floating
//!   point;
//! * hash-consed nodes with the **redundant-node** and **zero-edge**
//!   reductions and largest-magnitude weight normalisation;
//! * the tensor operations the image-computation algorithms need:
//!   [`TddManager::add`], [`TddManager::contract`] (summation over an
//!   arbitrary sorted index set, with the factor-2 rule for indices absent
//!   from both operands), [`TddManager::slice`], [`TddManager::conj`],
//!   [`TddManager::scale`], monotone renaming, and inner products;
//! * conversions to and from dense [`qits_tensor::Tensor`]s for testing, a
//!   Graphviz exporter reproducing the style of the paper's Fig. 1, and node
//!   statistics (the "max #node" column of Table I);
//! * **root-tracked garbage collection** ([`gc`]) over a backed
//!   Robin-Hood unique table with **generational node handles**: long
//!   fixpoint computations protect their live diagrams
//!   ([`TddManager::protect`] / [`RootScope`]) and reclaim everything else
//!   with [`TddManager::collect`], keeping the node store bounded by the
//!   live set — optionally automatically, under a [`GcPolicy`] watermark,
//!   with sweeps amortised across safepoints. Collection never moves a
//!   node: survivors stay bit-identical and swept handles become
//!   detectably stale ([`TddManager::is_live`]), so there is no
//!   relocation or pinning ceremony anywhere in the API.
//!
//! # Example
//!
//! ```
//! use qits_num::{Cplx, Mat};
//! use qits_tensor::Var;
//! use qits_tdd::TddManager;
//!
//! let mut m = TddManager::new();
//! let h = Cplx::FRAC_1_SQRT_2;
//! let hadamard = Mat::from_rows(&[&[h, h], &[h, -h]]);
//! // |+> = H |0>, built by contracting the gate TDD with the ket TDD.
//! let gate = m.from_matrix(&hadamard, &[Var::wire(0, 0)], &[Var::wire(0, 1)]);
//! let ket0 = m.basis_ket(&[Var::wire(0, 0)], &[false]);
//! let plus = m.contract(gate, ket0, &[Var::wire(0, 0)]);
//! let amp = m.eval(plus, &[(Var::wire(0, 1), true)].into_iter().collect());
//! assert!(amp.approx_eq(h));
//! ```

pub mod cache;
pub mod cancel;
mod cnum;
mod dot;
mod dump;
pub mod gc;
mod hash;
mod manager;
mod node;
mod ops;
mod order;
mod reorder;
mod stats;
mod table;
mod transfer;

pub use cache::{CacheLookup, CacheSizes, CacheStats, DEFAULT_CACHE_CAPACITY};
pub use cancel::{CancelToken, OperationCancelled};
pub use cnum::{CIdx, ComplexTable};
pub use dump::{DumpEdge, DumpError, DumpNode, TddDump};
pub use gc::{EdgeHolder, GcOutcome, GcPolicy, ReorderPolicy, RootId, RootScope};
pub use manager::{ArenaExhausted, TddManager};
pub use node::{Edge, NodeId, TERMINAL};
pub use stats::{ManagerStats, ProbeHistogram, PROBE_BUCKETS};

// Thread-safety contract, checked at compile time: a manager (and every
// handle into it) is plain owned data, so whole sessions can move between
// threads — the property `qits`'s parallel addition workers and its
// `EnginePool` worker threads are built on. A field that smuggles in
// `Rc`/`RefCell`/raw-pointer state breaks this assertion, not a user at
// runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TddManager>();
    assert_send_sync::<Edge>();
    assert_send_sync::<ManagerStats>();
    assert_send_sync::<GcPolicy>();
    assert_send_sync::<ReorderPolicy>();
    assert_send_sync::<ArenaExhausted>();
    assert_send_sync::<CancelToken>();
    assert_send_sync::<OperationCancelled>();
    assert_send_sync::<ProbeHistogram>();
};
