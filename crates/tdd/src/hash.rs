//! A fast, non-cryptographic hasher for decision-diagram tables.
//!
//! Unique tables and operation caches are hit on every node creation, so the
//! default SipHash is measurable overhead. This is an FxHash-style
//! multiply-mix hasher: adequate distribution for small fixed-size keys
//! (node ids, weight indices) and several times faster. Not suitable for
//! adversarial inputs — these tables are internal only.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher over 64-bit words.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuild::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn spreads_nearby_keys() {
        // Not a statistical test, just a sanity check that consecutive keys
        // do not collide outright.
        let h: std::collections::HashSet<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(h.len(), 1000);
    }
}
