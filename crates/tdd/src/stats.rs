//! Manager-level statistics.

/// Counters accumulated by a [`crate::TddManager`] over its lifetime.
///
/// `peak_arena` approximates the memory high-water mark; the per-result
/// node counts reported in the paper's Table I are computed separately via
/// [`crate::TddManager::node_count`] by the image-computation layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Distinct non-terminal nodes ever created.
    pub nodes_created: u64,
    /// Largest arena size observed (number of node slots).
    pub peak_arena: usize,
    /// Top-level calls to `add`.
    pub add_calls: u64,
    /// Top-level calls to `contract`.
    pub cont_calls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = ManagerStats::default();
        assert_eq!(s.nodes_created, 0);
        assert_eq!(s.peak_arena, 0);
        assert_eq!(s.add_calls, 0);
        assert_eq!(s.cont_calls, 0);
    }
}
