//! Manager-level statistics.

use crate::cache::CacheStats;

/// Fixed bucket count of [`ProbeHistogram`]; the last bucket is open-ended.
pub const PROBE_BUCKETS: usize = 16;

/// Probe-length histogram of the backed unique table.
///
/// Buckets count **probe lengths**: a lookup that resolves at its home
/// cell inspected one cell, so it lands in bucket 1 — bucket 0 is always
/// empty, and bucket 15 counts lengths of 15 cells or more. (An earlier
/// revision bucketed the *displacement* instead, which reported
/// `probe_p50: 0` for tables where every lookup genuinely touches a
/// cell.) A fixed-size array keeps the whole stats block `Copy` (worker
/// managers are merged by value into pool aggregates) while still giving
/// p50/p99 summaries — the telemetry the Robin Hood displacement is there
/// to keep flat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeHistogram(pub [u64; PROBE_BUCKETS]);

impl ProbeHistogram {
    /// Records one lookup that probed `dist` cells past its home — a
    /// probe length of `dist + 1`.
    #[inline]
    pub fn record(&mut self, dist: u32) {
        let b = (dist as usize).saturating_add(1).min(PROBE_BUCKETS - 1);
        self.0[b] += 1;
    }

    /// Total lookups recorded.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The smallest probe length covering fraction `p` of lookups (`0` when
    /// nothing was recorded; any recorded lookup has length ≥ 1). Bucket 15
    /// reads as "15 cells or more".
    pub fn percentile(&self, p: f64) -> u32 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let target = (total as f64 * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.0.iter().enumerate() {
            seen += c;
            if seen >= target {
                return i as u32;
            }
        }
        (PROBE_BUCKETS - 1) as u32
    }

    /// Median probe length.
    pub fn p50(&self) -> u32 {
        self.percentile(0.50)
    }

    /// 99th-percentile probe length.
    pub fn p99(&self) -> u32 {
        self.percentile(0.99)
    }

    /// Accumulates another histogram (pool aggregation).
    pub fn absorb(&mut self, other: &ProbeHistogram) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// Bucket movement since an earlier snapshot of the same table.
    pub fn since(&self, earlier: &ProbeHistogram) -> ProbeHistogram {
        let mut out = *self;
        for (a, b) in out.0.iter_mut().zip(earlier.0.iter()) {
            *a = a.saturating_sub(*b);
        }
        out
    }
}

/// Counters accumulated by a [`crate::TddManager`] over its lifetime.
///
/// `peak_arena` approximates the memory high-water mark; the per-result
/// node counts reported in the paper's Table I are computed separately via
/// [`crate::TddManager::node_count`] by the image-computation layer.
///
/// The `*_cache` fields are snapshots of the operation caches' lifetime
/// counters (see [`crate::cache`]); [`CacheStats::since`] turns two
/// snapshots into the movement across a phase, which is how the
/// image-computation layer attributes hit rates to individual runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Distinct non-terminal nodes ever created.
    pub nodes_created: u64,
    /// Largest slot-store size observed (number of **allocated** node
    /// slots — dead-but-reusable slots included; the live set is
    /// [`crate::TddManager::live_node_count`]). Free-list reuse keeps this
    /// near the live peak under GC, where a grow-only run keeps climbing.
    pub peak_arena: usize,
    /// Garbage collections performed (see [`crate::gc`]).
    pub gc_runs: u64,
    /// Nodes reclaimed across all collections.
    pub nodes_reclaimed: u64,
    /// GC safepoints polled via
    /// [`crate::TddManager::maybe_collect_at_safepoint`] — every poll, not
    /// just the ones that collected.
    pub safepoints_polled: u64,
    /// Safepoint polls that actually started a collection.
    pub safepoint_collections: u64,
    /// Non-terminal nodes that survived the most recent collection
    /// (`0` before the first collection).
    pub live_after_last_gc: usize,
    /// Cumulative nanoseconds spent inside collections (mark plus every
    /// sweep step) — the pause-time total the incremental sweep amortizes.
    pub gc_nanos: u64,
    /// Probe-length histogram of the backed unique table.
    pub probe_hist: ProbeHistogram,
    /// Index tombstones currently live (snapshot, not a counter).
    pub tombstones: usize,
    /// Robin Hood index cells currently allocated (snapshot) — the
    /// denominator that makes [`ManagerStats::tombstones`] a load ratio.
    pub index_cells: usize,
    /// Index tombstones ever created by sweeps.
    pub tombstones_created: u64,
    /// Slot generations bumped (one per node swept).
    pub generation_bumps: u64,
    /// Operation-cache entries rejected because their cached value's node
    /// generation went stale (the generational analogue of an epoch purge).
    pub stale_handle_hits: u64,
    /// Full unique-index rehashes (growth/tombstone purges). Collections
    /// never rebuild the index, so this moves only with table load.
    pub unique_rebuilds: u64,
    /// Adjacent-level swaps performed by dynamic variable reordering
    /// (every swap, whether called directly or from inside a sift).
    pub swaps: u64,
    /// Sifting passes completed ([`crate::TddManager::sift_all`] calls,
    /// scheduled or explicit).
    pub sift_passes: u64,
    /// Live nodes at the start of the most recent sifting pass (snapshot,
    /// `0` before the first pass).
    pub nodes_before_reorder: usize,
    /// Live nodes at the end of the most recent sifting pass (snapshot).
    pub nodes_after_reorder: usize,
    /// Nodes rewritten by a level swap whose recomputed leading weight
    /// was not exactly one: an exact magnitude tie re-grouped onto the
    /// other ex-aequo value (see the `reorder` module docs). Denotation
    /// is unaffected; the node sits in a non-canonical normal form until
    /// next rebuilt.
    pub reorder_residuals: u64,
    /// Nodes left **shadowed** by a level swap: the rewrite produced
    /// content bit-identical to an already-interned node (reachable only
    /// under tolerance-based weight snapping), so the slot stayed live
    /// and readable through its handles but was not re-indexed — lookups
    /// hash-cons onto the interned twin. Costs sharing, never
    /// correctness.
    pub reorder_shadowed: u64,
    /// Top-level calls to `add`.
    pub add_calls: u64,
    /// Top-level calls to `contract`.
    pub cont_calls: u64,
    /// Top-level calls to `slice`.
    pub slice_calls: u64,
    /// Top-level calls to `conj`.
    pub conj_calls: u64,
    /// Top-level calls to `rename_monotone`.
    pub rename_calls: u64,
    /// Addition-cache counters.
    pub add_cache: CacheStats,
    /// Contraction-cache counters.
    pub cont_cache: CacheStats,
    /// Slice-cache counters.
    pub slice_cache: CacheStats,
    /// Conjugation-cache counters.
    pub conj_cache: CacheStats,
    /// Renaming-cache counters.
    pub rename_cache: CacheStats,
}

impl ManagerStats {
    /// Merges another manager's counters into this aggregate — the shape a
    /// pool of worker managers needs to report fleet-wide totals (e.g.
    /// `qits`'s `EnginePool` summing per-worker safepoint and reclaim
    /// counters into its `PoolStats`).
    ///
    /// Counters **sum**; the high-water mark `peak_arena` takes the
    /// **max** (arenas are disjoint, so the fleet peak is at least the
    /// largest single arena); `live_after_last_gc` and `tombstones`
    /// **sum** (totals across all arenas/tables).
    pub fn absorb(&mut self, other: &ManagerStats) {
        self.nodes_created += other.nodes_created;
        self.peak_arena = self.peak_arena.max(other.peak_arena);
        self.gc_runs += other.gc_runs;
        self.nodes_reclaimed += other.nodes_reclaimed;
        self.safepoints_polled += other.safepoints_polled;
        self.safepoint_collections += other.safepoint_collections;
        self.live_after_last_gc += other.live_after_last_gc;
        self.gc_nanos += other.gc_nanos;
        self.probe_hist.absorb(&other.probe_hist);
        self.tombstones += other.tombstones;
        self.index_cells += other.index_cells;
        self.tombstones_created += other.tombstones_created;
        self.generation_bumps += other.generation_bumps;
        self.stale_handle_hits += other.stale_handle_hits;
        self.unique_rebuilds += other.unique_rebuilds;
        self.swaps += other.swaps;
        self.sift_passes += other.sift_passes;
        self.nodes_before_reorder += other.nodes_before_reorder;
        self.nodes_after_reorder += other.nodes_after_reorder;
        self.reorder_residuals += other.reorder_residuals;
        self.reorder_shadowed += other.reorder_shadowed;
        self.add_calls += other.add_calls;
        self.cont_calls += other.cont_calls;
        self.slice_calls += other.slice_calls;
        self.conj_calls += other.conj_calls;
        self.rename_calls += other.rename_calls;
        self.add_cache.absorb(&other.add_cache);
        self.cont_cache.absorb(&other.cont_cache);
        self.slice_cache.absorb(&other.slice_cache);
        self.conj_cache.absorb(&other.conj_cache);
        self.rename_cache.absorb(&other.rename_cache);
    }

    /// Counter movement since an earlier snapshot of the same manager.
    pub fn since(&self, earlier: &ManagerStats) -> ManagerStats {
        ManagerStats {
            nodes_created: self.nodes_created.saturating_sub(earlier.nodes_created),
            // High-water mark, not a counter: report the later value.
            peak_arena: self.peak_arena,
            gc_runs: self.gc_runs.saturating_sub(earlier.gc_runs),
            nodes_reclaimed: self.nodes_reclaimed.saturating_sub(earlier.nodes_reclaimed),
            safepoints_polled: self
                .safepoints_polled
                .saturating_sub(earlier.safepoints_polled),
            safepoint_collections: self
                .safepoint_collections
                .saturating_sub(earlier.safepoint_collections),
            // Snapshot, not a counter: report the later value.
            live_after_last_gc: self.live_after_last_gc,
            gc_nanos: self.gc_nanos.saturating_sub(earlier.gc_nanos),
            probe_hist: self.probe_hist.since(&earlier.probe_hist),
            // Snapshots, not counters: report the later values.
            tombstones: self.tombstones,
            index_cells: self.index_cells,
            tombstones_created: self
                .tombstones_created
                .saturating_sub(earlier.tombstones_created),
            generation_bumps: self
                .generation_bumps
                .saturating_sub(earlier.generation_bumps),
            stale_handle_hits: self
                .stale_handle_hits
                .saturating_sub(earlier.stale_handle_hits),
            unique_rebuilds: self.unique_rebuilds.saturating_sub(earlier.unique_rebuilds),
            swaps: self.swaps.saturating_sub(earlier.swaps),
            sift_passes: self.sift_passes.saturating_sub(earlier.sift_passes),
            // Snapshots of the latest pass, not counters.
            nodes_before_reorder: self.nodes_before_reorder,
            nodes_after_reorder: self.nodes_after_reorder,
            reorder_residuals: self
                .reorder_residuals
                .saturating_sub(earlier.reorder_residuals),
            reorder_shadowed: self
                .reorder_shadowed
                .saturating_sub(earlier.reorder_shadowed),
            add_calls: self.add_calls.saturating_sub(earlier.add_calls),
            cont_calls: self.cont_calls.saturating_sub(earlier.cont_calls),
            slice_calls: self.slice_calls.saturating_sub(earlier.slice_calls),
            conj_calls: self.conj_calls.saturating_sub(earlier.conj_calls),
            rename_calls: self.rename_calls.saturating_sub(earlier.rename_calls),
            add_cache: self.add_cache.since(&earlier.add_cache),
            cont_cache: self.cont_cache.since(&earlier.cont_cache),
            slice_cache: self.slice_cache.since(&earlier.slice_cache),
            conj_cache: self.conj_cache.since(&earlier.conj_cache),
            rename_cache: self.rename_cache.since(&earlier.rename_cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = ManagerStats::default();
        assert_eq!(s.nodes_created, 0);
        assert_eq!(s.peak_arena, 0);
        assert_eq!(s.add_calls, 0);
        assert_eq!(s.cont_calls, 0);
        assert_eq!(s.tombstones_created, 0);
        assert_eq!(s.probe_hist.total(), 0);
        assert_eq!(s.cont_cache, CacheStats::default());
    }

    #[test]
    fn absorb_sums_counters_and_maxes_peaks() {
        let mut a = ManagerStats {
            nodes_created: 10,
            peak_arena: 100,
            safepoints_polled: 3,
            nodes_reclaimed: 7,
            live_after_last_gc: 20,
            generation_bumps: 2,
            tombstones: 4,
            cont_cache: CacheStats {
                hits: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = ManagerStats {
            nodes_created: 5,
            peak_arena: 250,
            safepoints_polled: 4,
            nodes_reclaimed: 1,
            live_after_last_gc: 30,
            generation_bumps: 3,
            tombstones: 1,
            cont_cache: CacheStats {
                hits: 9,
                ..Default::default()
            },
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes_created, 15);
        assert_eq!(a.peak_arena, 250, "high-water mark takes the max");
        assert_eq!(a.safepoints_polled, 7);
        assert_eq!(a.nodes_reclaimed, 8);
        assert_eq!(a.live_after_last_gc, 50);
        assert_eq!(a.generation_bumps, 5);
        assert_eq!(a.tombstones, 5);
        assert_eq!(a.cont_cache.hits, 11);
    }

    #[test]
    fn since_subtracts_counters() {
        let later = ManagerStats {
            nodes_created: 10,
            add_calls: 4,
            stale_handle_hits: 6,
            cont_cache: CacheStats {
                hits: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        let earlier = ManagerStats {
            nodes_created: 6,
            add_calls: 1,
            stale_handle_hits: 2,
            cont_cache: CacheStats {
                hits: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d.nodes_created, 4);
        assert_eq!(d.add_calls, 3);
        assert_eq!(d.stale_handle_hits, 4);
        assert_eq!(d.cont_cache.hits, 5);
    }

    #[test]
    fn probe_histogram_percentiles() {
        let mut h = ProbeHistogram::default();
        assert_eq!(h.p50(), 0);
        // 90 lookups of length 1 (home hit), 9 of length 3, 1 of length 8.
        h.0[1] = 90;
        h.0[3] = 9;
        h.0[8] = 1;
        assert_eq!(h.total(), 100);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 3);
        assert_eq!(h.percentile(1.0), 8);
        // Overflow bucket saturates.
        h.record(1000);
        assert_eq!(h.0[PROBE_BUCKETS - 1], 1);
        // absorb and since round-trip.
        let snap = h;
        h.record(3);
        let moved = h.since(&snap);
        assert_eq!(moved.total(), 1);
        assert_eq!(moved.0[4], 1, "distance 3 is a probe of length 4");
        let mut agg = snap;
        agg.absorb(&moved);
        assert_eq!(agg, h);
    }

    #[test]
    fn probe_length_counts_home_hit_as_one() {
        // Regression: home-cell hits used to land in bucket 0, reporting
        // `probe_p50: 0` — as if the median lookup touched no cell at all.
        let mut h = ProbeHistogram::default();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.0[0], 0, "bucket 0 is unreachable");
        assert_eq!(h.0[1], 10);
        assert_eq!(h.p50(), 1, "a home-cell hit is one probe, not zero");
        assert_eq!(h.p99(), 1);
    }
}
