//! Manager-level statistics.

use crate::cache::CacheStats;

/// Counters accumulated by a [`crate::TddManager`] over its lifetime.
///
/// `peak_arena` approximates the memory high-water mark; the per-result
/// node counts reported in the paper's Table I are computed separately via
/// [`crate::TddManager::node_count`] by the image-computation layer.
///
/// The `*_cache` fields are snapshots of the operation caches' lifetime
/// counters (see [`crate::cache`]); [`CacheStats::since`] turns two
/// snapshots into the movement across a phase, which is how the
/// image-computation layer attributes hit rates to individual runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Distinct non-terminal nodes ever created.
    pub nodes_created: u64,
    /// Largest arena size observed (number of **allocated** node slots —
    /// garbage included; the live set is [`crate::TddManager::live_node_count`]).
    pub peak_arena: usize,
    /// Garbage collections performed (see [`crate::gc`]).
    pub gc_runs: u64,
    /// Nodes reclaimed across all collections.
    pub nodes_reclaimed: u64,
    /// GC safepoints polled via
    /// [`crate::TddManager::maybe_collect_at_safepoint`] — every poll, not
    /// just the ones that collected.
    pub safepoints_polled: u64,
    /// Safepoint polls that actually ran a collection.
    pub safepoint_collections: u64,
    /// Non-terminal nodes that survived the most recent collection
    /// (`0` before the first collection).
    pub live_after_last_gc: usize,
    /// Top-level calls to `add`.
    pub add_calls: u64,
    /// Top-level calls to `contract`.
    pub cont_calls: u64,
    /// Top-level calls to `slice`.
    pub slice_calls: u64,
    /// Top-level calls to `conj`.
    pub conj_calls: u64,
    /// Top-level calls to `rename_monotone`.
    pub rename_calls: u64,
    /// Addition-cache counters.
    pub add_cache: CacheStats,
    /// Contraction-cache counters.
    pub cont_cache: CacheStats,
    /// Slice-cache counters.
    pub slice_cache: CacheStats,
    /// Conjugation-cache counters.
    pub conj_cache: CacheStats,
    /// Renaming-cache counters.
    pub rename_cache: CacheStats,
}

impl ManagerStats {
    /// Merges another manager's counters into this aggregate — the shape a
    /// pool of worker managers needs to report fleet-wide totals (e.g.
    /// `qits`'s `EnginePool` summing per-worker safepoint and reclaim
    /// counters into its `PoolStats`).
    ///
    /// Counters **sum**; the high-water mark `peak_arena` takes the
    /// **max** (arenas are disjoint, so the fleet peak is at least the
    /// largest single arena); `live_after_last_gc` **sums** (total nodes
    /// live across all arenas after their respective last collections).
    pub fn absorb(&mut self, other: &ManagerStats) {
        self.nodes_created += other.nodes_created;
        self.peak_arena = self.peak_arena.max(other.peak_arena);
        self.gc_runs += other.gc_runs;
        self.nodes_reclaimed += other.nodes_reclaimed;
        self.safepoints_polled += other.safepoints_polled;
        self.safepoint_collections += other.safepoint_collections;
        self.live_after_last_gc += other.live_after_last_gc;
        self.add_calls += other.add_calls;
        self.cont_calls += other.cont_calls;
        self.slice_calls += other.slice_calls;
        self.conj_calls += other.conj_calls;
        self.rename_calls += other.rename_calls;
        self.add_cache.absorb(&other.add_cache);
        self.cont_cache.absorb(&other.cont_cache);
        self.slice_cache.absorb(&other.slice_cache);
        self.conj_cache.absorb(&other.conj_cache);
        self.rename_cache.absorb(&other.rename_cache);
    }

    /// Counter movement since an earlier snapshot of the same manager.
    pub fn since(&self, earlier: &ManagerStats) -> ManagerStats {
        ManagerStats {
            nodes_created: self.nodes_created.saturating_sub(earlier.nodes_created),
            // High-water mark, not a counter: report the later value.
            peak_arena: self.peak_arena,
            gc_runs: self.gc_runs.saturating_sub(earlier.gc_runs),
            nodes_reclaimed: self.nodes_reclaimed.saturating_sub(earlier.nodes_reclaimed),
            safepoints_polled: self
                .safepoints_polled
                .saturating_sub(earlier.safepoints_polled),
            safepoint_collections: self
                .safepoint_collections
                .saturating_sub(earlier.safepoint_collections),
            // Snapshot, not a counter: report the later value.
            live_after_last_gc: self.live_after_last_gc,
            add_calls: self.add_calls.saturating_sub(earlier.add_calls),
            cont_calls: self.cont_calls.saturating_sub(earlier.cont_calls),
            slice_calls: self.slice_calls.saturating_sub(earlier.slice_calls),
            conj_calls: self.conj_calls.saturating_sub(earlier.conj_calls),
            rename_calls: self.rename_calls.saturating_sub(earlier.rename_calls),
            add_cache: self.add_cache.since(&earlier.add_cache),
            cont_cache: self.cont_cache.since(&earlier.cont_cache),
            slice_cache: self.slice_cache.since(&earlier.slice_cache),
            conj_cache: self.conj_cache.since(&earlier.conj_cache),
            rename_cache: self.rename_cache.since(&earlier.rename_cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = ManagerStats::default();
        assert_eq!(s.nodes_created, 0);
        assert_eq!(s.peak_arena, 0);
        assert_eq!(s.add_calls, 0);
        assert_eq!(s.cont_calls, 0);
        assert_eq!(s.cont_cache, CacheStats::default());
    }

    #[test]
    fn absorb_sums_counters_and_maxes_peaks() {
        let mut a = ManagerStats {
            nodes_created: 10,
            peak_arena: 100,
            safepoints_polled: 3,
            nodes_reclaimed: 7,
            live_after_last_gc: 20,
            cont_cache: CacheStats {
                hits: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = ManagerStats {
            nodes_created: 5,
            peak_arena: 250,
            safepoints_polled: 4,
            nodes_reclaimed: 1,
            live_after_last_gc: 30,
            cont_cache: CacheStats {
                hits: 9,
                ..Default::default()
            },
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes_created, 15);
        assert_eq!(a.peak_arena, 250, "high-water mark takes the max");
        assert_eq!(a.safepoints_polled, 7);
        assert_eq!(a.nodes_reclaimed, 8);
        assert_eq!(a.live_after_last_gc, 50);
        assert_eq!(a.cont_cache.hits, 11);
    }

    #[test]
    fn since_subtracts_counters() {
        let later = ManagerStats {
            nodes_created: 10,
            add_calls: 4,
            cont_cache: CacheStats {
                hits: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        let earlier = ManagerStats {
            nodes_created: 6,
            add_calls: 1,
            cont_cache: CacheStats {
                hits: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d.nodes_created, 4);
        assert_eq!(d.add_calls, 3);
        assert_eq!(d.cont_cache.hits, 5);
    }
}
