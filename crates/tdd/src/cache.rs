//! Manager-owned operation caches.
//!
//! Mature decision-diagram packages keep *all* operation memos on the
//! manager, not on the call stack: a memo entry for `f op g` is valid for
//! the lifetime of the unique table, so discarding it after one top-level
//! call throws away exactly the reuse that repeated image computations
//! (same blocks against many basis states, same sub-diagrams across Kraus
//! branches) depend on. This module is that subsystem for `qits-tdd`:
//!
//! * [`OpCache`] — a size-bounded memo table with hit/miss/insert/eviction
//!   counters. Keys are **weight-normalized** by the call sites (weights
//!   factored out of the operands before lookup), so one entry serves every
//!   scalar multiple of the same operand pair.
//! * [`SumInterner`] — interns summation-variable suffixes as cons lists,
//!   giving the contraction cache a small copyable key component that is
//!   stable across top-level [`crate::TddManager::contract`] calls.
//! * [`OpCaches`] — the full cache set a [`crate::TddManager`] owns: one
//!   table per cached operation (`add`, `contract`, `slice`, `conj`,
//!   `rename`).
//!
//! # Eviction
//!
//! Every table is a bounded, direct-mapped *computed table* (the design
//! mature BDD packages use): a power-of-two slot array indexed by key
//! hash, where a colliding insert replaces exactly one entry. Eviction is
//! therefore incremental — a contraction deep in recursion may lose
//! individual entries to collisions and recompute them, but its working
//! set is never flushed wholesale, so worst-case behavior degrades
//! gracefully instead of collapsing to the uncached recursion. The hit and
//! eviction counters make collision pressure observable. Capacity `0`
//! disables caching entirely (every lookup misses, inserts are dropped),
//! which is how the equivalence tests compare cached against uncached runs
//! bit for bit.
//!
//! # Garbage collection
//!
//! Cache keys and values name generational [`NodeId`]s. A collection never
//! renumbers a node (see [`crate::gc`]) — it can only sweep unreachable
//! slots, bumping their generations — so an entry written before a
//! collection is *usually* still correct afterwards. Entries are therefore
//! **epoch-tagged** but kept across collections: [`OpCaches::on_collect`]
//! only bumps the epoch, and a lookup that finds an old-epoch entry
//! ([`CacheLookup::Stale`]) hands the decision to the manager, which
//! re-admits the entry ([`OpCache::admit`]) when the cached value's node is
//! still live — sound because marking is transitive, so a live root implies
//! the whole memoised subgraph survived — and drops it otherwise
//! ([`OpCache::reject_stale`], counted as a stale-handle hit in
//! [`crate::ManagerStats`]). [`OpCache::retain_with`] backs the manager's
//! targeted [`crate::TddManager::purge_stale`], evicting only
//! dead-generation entries (counted in [`CacheStats::purged`]). The
//! interners survive collections untouched — they key on variables, never
//! on nodes.

use std::hash::Hash;

use qits_tensor::Var;

use crate::hash::FastMap;
use crate::node::{Edge, NodeId};

/// Default per-table entry bound (~10⁶ entries per operation cache).
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// Hit/miss/insert/eviction counters for one operation cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to recomputation.
    pub misses: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries dropped by capacity flushes.
    pub evictions: u64,
    /// Entries evicted by [`crate::TddManager::purge_stale`] because their
    /// key or value named a swept (dead-generation) node.
    pub purged: u64,
}

/// Outcome of an epoch-aware cache probe ([`OpCache::probe`]).
///
/// `Stale` is the interesting case: the key matched but the entry was
/// written before the last collection. With generational handles the value
/// is usually still correct (collections never relocate), so the manager —
/// which alone can check generation liveness — decides between
/// [`OpCache::admit`] and [`OpCache::reject_stale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup<V> {
    /// No entry for this key.
    Miss,
    /// A current-epoch entry answered.
    Hit(V),
    /// A pre-collection entry matched the key; the caller must validate it.
    Stale(V),
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits per lookup in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Counter movement since an earlier snapshot of the same cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            purged: self.purged.saturating_sub(earlier.purged),
        }
    }

    /// Accumulates another counter set (used to merge worker managers).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.purged += other.purged;
    }
}

/// Smallest slot count a non-disabled cache allocates (power of two).
const MIN_SLOTS: usize = 1 << 12;

/// A size-bounded, direct-mapped memo table with telemetry.
///
/// This is the classic decision-diagram *computed table*: a power-of-two
/// slot array indexed by key hash, where an insert that collides with a
/// different key **replaces** that one entry. Eviction is therefore
/// per-slot and incremental — a contraction deep in recursion can lose
/// individual entries to collisions (and gracefully recompute them) but
/// never has its entire working set flushed out from under it, which a
/// clear-on-full policy would do. The array starts at `MIN_SLOTS` and
/// doubles (rehashing) until it reaches the configured capacity.
///
/// Values must be `Copy` (they are [`Edge`]s in practice) so a hit never
/// borrows the table.
///
/// Entries are **epoch-tagged**: each carries the GC epoch it was written
/// in. With generational node handles a collection never invalidates an
/// entry wholesale — it can only sweep the nodes an entry names — so
/// [`OpCaches::on_collect`] merely bumps the epoch and **keeps** every
/// entry. A probe that matches an old-epoch entry reports it as
/// [`CacheLookup::Stale`] rather than answering, and the manager either
/// re-admits it (promoting it to the current epoch via [`OpCache::admit`])
/// after checking the cached value's generation, or rejects it. This turns
/// the old purge-everything collection tax into a per-entry liveness check
/// on the entries actually touched again.
#[derive(Debug)]
pub struct OpCache<K, V> {
    /// Power-of-two slot array; empty until the first insert so idle
    /// caches cost nothing. Each entry carries the epoch it was written in.
    slots: Vec<Option<(K, V, u32)>>,
    /// Occupied slot count.
    len: usize,
    /// Maximum slot count (power of two; `0` disables the cache).
    capacity: usize,
    /// Current GC epoch; entries from older epochs are stale.
    epoch: u32,
    stats: CacheStats,
}

impl<K: Eq + Hash + Copy, V: Copy> OpCache<K, V> {
    /// An empty cache bounded to `capacity` slots (`0` disables caching;
    /// other values round down to a power of two).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = if capacity == 0 {
            0
        } else {
            prev_power_of_two(capacity)
        };
        OpCache {
            slots: Vec::new(),
            len: 0,
            capacity,
            epoch: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn slot_of(&self, key: &K) -> usize {
        use std::hash::BuildHasher;
        let h = crate::hash::FastBuild::default().hash_one(key);
        (h as usize) & (self.slots.len() - 1)
    }

    /// Looks `key` up. A current-epoch match counts a hit; no match counts
    /// a miss; an old-epoch match is returned as [`CacheLookup::Stale`]
    /// **uncounted** — the caller must follow up with [`OpCache::admit`]
    /// (counts the hit) or [`OpCache::reject_stale`] (counts the miss).
    #[inline]
    pub fn probe(&mut self, key: &K) -> CacheLookup<V> {
        if !self.slots.is_empty() {
            if let Some((k, v, e)) = self.slots[self.slot_of(key)] {
                if k == *key {
                    if e == self.epoch {
                        self.stats.hits += 1;
                        return CacheLookup::Hit(v);
                    }
                    return CacheLookup::Stale(v);
                }
            }
        }
        self.stats.misses += 1;
        CacheLookup::Miss
    }

    /// Looks `key` up, counting a hit or miss; stale entries count as
    /// misses. The epoch-oblivious entry point for callers that cannot
    /// validate stale values (tests, capacity-0 probes).
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.probe(key) {
            CacheLookup::Hit(v) => Some(v),
            CacheLookup::Stale(_) => {
                self.stats.misses += 1;
                None
            }
            CacheLookup::Miss => None,
        }
    }

    /// Promotes a validated stale entry to the current epoch and counts the
    /// hit [`OpCache::probe`] deferred. The entry re-lands in its own slot
    /// (same key, same hash), so `len` is unchanged.
    #[inline]
    pub fn admit(&mut self, key: K, value: V) {
        self.stats.hits += 1;
        if self.slots.is_empty() {
            return;
        }
        let idx = self.slot_of(&key);
        self.slots[idx] = Some((key, value, self.epoch));
    }

    /// Counts the miss [`OpCache::probe`] deferred for a stale entry the
    /// caller rejected. The entry itself is left to be overwritten.
    #[inline]
    pub fn reject_stale(&mut self) {
        self.stats.misses += 1;
    }

    /// Records `key -> value` in the current epoch, replacing at most the
    /// one colliding entry.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.slots.is_empty() {
            self.slots = vec![None; MIN_SLOTS.min(self.capacity)];
        } else if self.len * 2 >= self.slots.len() && self.slots.len() < self.capacity {
            self.grow();
        }
        let idx = self.slot_of(&key);
        match &self.slots[idx] {
            None => self.len += 1,
            Some((k, _, e)) if *e != self.epoch || *k != key => self.stats.evictions += 1,
            Some(_) => {}
        }
        self.slots[idx] = Some((key, value, self.epoch));
        self.stats.inserts += 1;
    }

    /// Doubles the slot array, rehashing live entries.
    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; doubled]);
        self.len = 0;
        for entry in old.into_iter().flatten() {
            let idx = self.slot_of(&entry.0);
            if self.slots[idx].is_none() {
                self.len += 1;
            }
            self.slots[idx] = Some(entry);
        }
    }

    /// Drops every entry and releases the slot array (counters are kept —
    /// they are lifetime telemetry).
    pub fn clear(&mut self) {
        self.slots = Vec::new();
        self.len = 0;
    }

    /// Advances the GC epoch **without** purging: entries are kept and
    /// become [`CacheLookup::Stale`] until re-validated. Called on every
    /// collection.
    pub fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Evicts every entry `keep` rejects, returning how many were dropped
    /// (also counted in [`CacheStats::purged`]). Backs the manager's
    /// targeted [`crate::TddManager::purge_stale`]: `keep` is a
    /// generation-liveness check over the entry's key and value.
    pub fn retain_with(&mut self, mut keep: impl FnMut(&K, &V) -> bool) -> u64 {
        let mut purged = 0u64;
        for slot in self.slots.iter_mut() {
            if matches!(slot, Some((k, v, _)) if !keep(k, v)) {
                *slot = None;
                self.len -= 1;
                purged += 1;
            }
        }
        self.stats.purged += purged;
        purged
    }

    /// The current GC epoch of this table.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot bound (`0` = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Re-bounds the table. Entries are dropped (and counted as evicted)
    /// only if the table must shrink below its current allocation; this is
    /// a configuration-time operation, not a hot-path one.
    pub fn set_capacity(&mut self, capacity: usize) {
        let capacity = if capacity == 0 {
            0
        } else {
            prev_power_of_two(capacity)
        };
        self.capacity = capacity;
        if self.slots.len() > capacity {
            self.stats.evictions += self.len as u64;
            self.clear();
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// Largest power of two `<= n` (`n >= 1`).
fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() / 2
    }
}

/// Handle to an interned summation suffix (see [`SumInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SumId(u32);

impl SumId {
    /// The empty suffix (no summation variables remain).
    pub const EMPTY: SumId = SumId(0);
}

/// Interns the suffixes `sum[i..]` of summation-variable lists as cons
/// lists, in O(len) per list.
///
/// The contraction recursion is memoised on `(left node, right node,
/// remaining summation suffix)`. A per-call memo could key on the suffix
/// *position*, but a manager-owned cache needs a key that means the same
/// thing in every call — two contractions whose remaining summation
/// variables coincide may share entries even if their full lists differ.
/// Interning `(head, tail-id)` pairs gives each distinct suffix one stable
/// `u32` for the lifetime of the manager.
#[derive(Debug, Default)]
pub struct SumInterner {
    cons: FastMap<(Var, SumId), SumId>,
}

impl SumInterner {
    /// Interns all suffixes of `sum`, returning `ids[i]` = id of `sum[i..]`
    /// (so `ids[sum.len()]` is [`SumId::EMPTY`]).
    pub fn suffix_ids(&mut self, sum: &[Var]) -> Vec<SumId> {
        let mut ids = vec![SumId::EMPTY; sum.len() + 1];
        for i in (0..sum.len()).rev() {
            let tail = ids[i + 1];
            let next =
                SumId(u32::try_from(self.cons.len() + 1).expect("summation interner overflow"));
            ids[i] = *self.cons.entry((sum[i], tail)).or_insert(next);
        }
        ids
    }

    /// Number of distinct non-empty suffixes seen so far.
    pub fn len(&self) -> usize {
        self.cons.len()
    }

    /// Whether no suffix has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.cons.is_empty()
    }
}

/// Handle to an interned monotone renaming map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RenameId(u32);

/// Interns renaming maps (sorted `(old, new)` pair lists) so the rename
/// cache can key on `(node, map)` across calls.
#[derive(Debug, Default)]
pub struct RenameInterner {
    maps: FastMap<Vec<(Var, Var)>, RenameId>,
}

impl RenameInterner {
    /// Interns a map given as ascending `(old, new)` pairs.
    pub fn intern(&mut self, pairs: Vec<(Var, Var)>) -> RenameId {
        let next = RenameId(u32::try_from(self.maps.len()).expect("rename interner overflow"));
        *self.maps.entry(pairs).or_insert(next)
    }

    /// Number of distinct maps interned.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Whether no map has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }
}

/// Live entry counts of every operation cache, for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSizes {
    /// Entries in the addition cache.
    pub add: usize,
    /// Entries in the contraction cache.
    pub cont: usize,
    /// Entries in the slice cache.
    pub slice: usize,
    /// Entries in the conjugation cache.
    pub conj: usize,
    /// Entries in the renaming cache.
    pub rename: usize,
}

impl CacheSizes {
    /// Total entries across all tables.
    pub fn total(&self) -> usize {
        self.add + self.cont + self.slice + self.conj + self.rename
    }
}

/// The complete cache set owned by a [`crate::TddManager`].
#[derive(Debug)]
pub struct OpCaches {
    /// `a + b`, keyed on weight-normalized operand edges.
    pub add: OpCache<(Edge, Edge), Edge>,
    /// `cont(a, b, sum)`, keyed on operand nodes plus the interned
    /// remaining-summation suffix; weights are factored out entirely.
    pub cont: OpCache<(NodeId, NodeId, SumId), Edge>,
    /// `slice(e, var, value)`, keyed on the operand node and the slice.
    pub slice: OpCache<(NodeId, Var, bool), Edge>,
    /// `conj(e)`, keyed on the operand node.
    pub conj: OpCache<NodeId, Edge>,
    /// `rename(e, map)`, keyed on the operand node and the interned map.
    pub rename: OpCache<(NodeId, RenameId), Edge>,
    /// Summation-suffix interner backing the contraction keys.
    pub sums: SumInterner,
    /// Renaming-map interner backing the rename keys.
    pub renames: RenameInterner,
}

impl OpCaches {
    /// A fresh cache set with every table bounded to `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        OpCaches {
            add: OpCache::with_capacity(capacity),
            cont: OpCache::with_capacity(capacity),
            slice: OpCache::with_capacity(capacity),
            conj: OpCache::with_capacity(capacity),
            rename: OpCache::with_capacity(capacity),
            sums: SumInterner::default(),
            renames: RenameInterner::default(),
        }
    }

    /// Drops every entry of every table. Interners and counters are kept:
    /// interned ids must stay stable for the manager's lifetime, and the
    /// counters are cumulative telemetry.
    pub fn clear(&mut self) {
        self.add.clear();
        self.cont.clear();
        self.slice.clear();
        self.conj.clear();
        self.rename.clear();
    }

    /// Garbage-collection hook: bumps every table's epoch. Entries are
    /// kept — generational handles never get renumbered, so each entry is
    /// re-validated lazily on its next probe (or evicted wholesale by
    /// [`crate::TddManager::purge_stale`]). Interners are untouched — they
    /// key on variables, which collections never renumber.
    pub fn on_collect(&mut self) {
        self.add.bump_epoch();
        self.cont.bump_epoch();
        self.slice.bump_epoch();
        self.conj.bump_epoch();
        self.rename.bump_epoch();
    }

    /// Re-bounds every table.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.add.set_capacity(capacity);
        self.cont.set_capacity(capacity);
        self.slice.set_capacity(capacity);
        self.conj.set_capacity(capacity);
        self.rename.set_capacity(capacity);
    }

    /// Live entry counts of every table.
    pub fn sizes(&self) -> CacheSizes {
        CacheSizes {
            add: self.add.len(),
            cont: self.cont.len(),
            slice: self.slice.len(),
            conj: self.conj.len(),
            rename: self.rename.len(),
        }
    }
}

impl Default for OpCaches {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_counting() {
        let mut c: OpCache<u32, u32> = OpCache::with_capacity(8);
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        let s = *c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_size_and_collisions_evict_singly() {
        let mut c: OpCache<u32, u32> = OpCache::with_capacity(4);
        for k in 0..64 {
            c.insert(k, k * 10);
        }
        assert!(c.len() <= 4, "direct-mapped table exceeded capacity");
        assert!(
            c.stats().evictions > 0,
            "64 inserts into 4 slots must collide"
        );
        // Each eviction displaced exactly one entry.
        assert_eq!(
            c.stats().inserts,
            c.len() as u64 + c.stats().evictions,
            "every insert either filled a slot or displaced one entry"
        );
        // Whatever survived is still exactly retrievable.
        let mut live = 0;
        for k in 0..64 {
            if let Some(v) = c.get(&k) {
                assert_eq!(v, k * 10);
                live += 1;
            }
        }
        assert_eq!(live, c.len());
    }

    #[test]
    fn grows_toward_capacity_without_losing_recent_entries() {
        let mut c: OpCache<u64, u64> = OpCache::with_capacity(1 << 16);
        for k in 0..5000u64 {
            c.insert(k, k);
        }
        // Load factor stays below 1/2 of the (grown) slot array, so the
        // overwhelming majority of a working set this small survives.
        assert!(c.len() > 4000, "unexpected collision rate: {}", c.len());
        let hits = (0..5000u64).filter(|k| c.get(k).is_some()).count();
        assert_eq!(hits, c.len());
    }

    #[test]
    fn epoch_bump_keeps_entries_as_stale_until_promoted() {
        let mut c: OpCache<u32, u32> = OpCache::with_capacity(16);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.len(), 2);
        c.bump_epoch();
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.len(), 2, "bump must not purge");
        // A probe surfaces the old entry as stale, uncounted.
        assert_eq!(c.probe(&1), CacheLookup::Stale(10));
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 0);
        // The caller validates and promotes it: a hit, and now current.
        c.admit(1, 10);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.probe(&1), CacheLookup::Hit(10));
        // ...or rejects it: a miss.
        assert_eq!(c.probe(&2), CacheLookup::Stale(20));
        c.reject_stale();
        assert_eq!(c.stats().misses, 1);
        // The epoch-oblivious `get` treats stale as a plain miss.
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn retain_with_purges_rejected_entries() {
        let mut c: OpCache<u32, u32> = OpCache::with_capacity(16);
        for k in 0..6 {
            c.insert(k, k * 10);
        }
        let before = c.len();
        let purged = c.retain_with(|k, _| k % 2 == 0);
        assert!(purged > 0);
        assert_eq!(c.len() as u64, before as u64 - purged);
        assert_eq!(c.stats().purged, purged);
        assert_eq!(c.get(&1), None);
        if before == 6 {
            assert_eq!(c.get(&2), Some(20));
        }
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: OpCache<u32, u32> = OpCache::with_capacity(0);
        c.insert(1, 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.stats().inserts, 0);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn stats_since_and_absorb() {
        let a = CacheStats {
            hits: 10,
            misses: 6,
            inserts: 6,
            ..Default::default()
        };
        let b = CacheStats {
            hits: 4,
            misses: 2,
            inserts: 2,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!((d.hits, d.misses), (6, 4));
        let mut m = b;
        m.absorb(&d);
        assert_eq!(m, a);
    }

    #[test]
    fn sum_interner_suffixes_are_stable_and_shared() {
        let mut i = SumInterner::default();
        let a = i.suffix_ids(&[Var(1), Var(2), Var(3)]);
        let b = i.suffix_ids(&[Var(0), Var(2), Var(3)]);
        assert_eq!(a[3], SumId::EMPTY);
        // Identical suffixes [2,3] and [3] intern to identical ids even
        // though the full lists differ.
        assert_eq!(a[1], b[1]);
        assert_eq!(a[2], b[2]);
        // Distinct heads give distinct ids.
        assert_ne!(a[0], b[0]);
        // Re-interning is stable.
        assert_eq!(i.suffix_ids(&[Var(1), Var(2), Var(3)]), a);
    }

    #[test]
    fn rename_interner_distinguishes_maps() {
        let mut i = RenameInterner::default();
        let m1 = i.intern(vec![(Var(0), Var(1))]);
        let m2 = i.intern(vec![(Var(0), Var(2))]);
        let m1b = i.intern(vec![(Var(0), Var(1))]);
        assert_eq!(m1, m1b);
        assert_ne!(m1, m2);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn cache_set_clear_empties_every_table() {
        let mut cs = OpCaches::with_capacity(16);
        cs.add.insert((Edge::ONE, Edge::ONE), Edge::ONE);
        cs.cont.insert(
            (crate::node::TERMINAL, crate::node::TERMINAL, SumId::EMPTY),
            Edge::ONE,
        );
        cs.slice
            .insert((crate::node::TERMINAL, Var(0), true), Edge::ONE);
        cs.conj.insert(crate::node::TERMINAL, Edge::ONE);
        let rid = cs.renames.intern(vec![(Var(0), Var(1))]);
        cs.rename.insert((crate::node::TERMINAL, rid), Edge::ONE);
        assert_eq!(cs.sizes().total(), 5);
        cs.clear();
        assert_eq!(cs.sizes(), CacheSizes::default());
    }
}
