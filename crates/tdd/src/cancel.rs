//! Cooperative cancellation for long-running diagram operations.
//!
//! A fixpoint computation (reachability, equivalence) can run for a long
//! time between top-level calls, but it polls a **GC safepoint**
//! ([`crate::TddManager::maybe_collect_at_safepoint`]) after every image
//! step. A [`CancelToken`] piggybacks on exactly that cadence: the owner
//! of a computation hands a clone of the token to whoever may want to stop
//! it, installs it on the manager ([`crate::TddManager::set_cancel_token`]),
//! and every safepoint poll checks the flag. A tripped token unwinds the
//! operation with a typed [`OperationCancelled`] panic payload — the same
//! mechanism [`crate::ArenaExhausted`] uses — which session facades catch
//! at the operation boundary and convert into their fallible API's error.
//!
//! Polls are counted ([`CancelToken::polls`]) so tests can *prove* early
//! exit: a cancelled run observes strictly fewer polls than a complete
//! one. [`CancelToken::cancel_after`] trips the token deterministically on
//! the n-th poll, independent of thread timing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Panic payload thrown from a GC safepoint when the installed
/// [`CancelToken`] has been tripped.
///
/// Like [`crate::ArenaExhausted`], cancellation is not recoverable
/// *inside* a recursive diagram operation — there is no partial result to
/// return — so it unwinds as a typed payload that the session facade
/// (`qits`'s `Engine`) catches at the operation boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationCancelled {
    /// Safepoint polls the token had seen when it fired.
    pub polls: u64,
}

impl std::fmt::Display for OperationCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "operation cancelled after {} safepoint polls",
            self.polls
        )
    }
}

/// Shared cancellation flag polled at GC safepoints.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// flag: the submitter keeps one clone to call [`CancelToken::cancel`],
/// the worker installs another on its manager. Once tripped a token stays
/// tripped — tokens are single-use by design, one per job.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

#[derive(Debug, Default)]
struct TokenState {
    cancelled: AtomicBool,
    polls: AtomicU64,
    /// Trip automatically when `polls` reaches this count (0 = never).
    /// Lets tests cancel at a deterministic point in the computation
    /// instead of racing a wall-clock timer against the worker.
    trip_at: AtomicU64,
}

impl CancelToken {
    /// A fresh, un-tripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that trips itself on the `n`-th safepoint poll (1-based).
    /// `cancel_after(0)` is equivalent to an already-cancelled token.
    pub fn cancel_after(n: u64) -> Self {
        let token = Self::new();
        if n == 0 {
            token.cancel();
        } else {
            token.inner.trip_at.store(n, Ordering::Relaxed);
        }
        token
    }

    /// Trips the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped (without counting a poll).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Safepoint polls observed so far (across every clone).
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }

    /// Records one safepoint poll and reports whether the computation
    /// should unwind. Called by the manager; user code normally has no
    /// reason to invoke this directly.
    pub fn poll(&self) -> bool {
        let seen = self.inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
        let trip_at = self.inner.trip_at.load(Ordering::Relaxed);
        if trip_at != 0 && seen >= trip_at {
            self.cancel();
        }
        self.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn poll_counts_and_trips_deterministically() {
        let t = CancelToken::cancel_after(3);
        assert!(!t.poll());
        assert!(!t.poll());
        assert!(t.poll());
        assert_eq!(t.polls(), 3);
        // Stays tripped.
        assert!(t.poll());
    }

    #[test]
    fn cancel_after_zero_is_pre_cancelled() {
        let t = CancelToken::cancel_after(0);
        assert!(t.is_cancelled());
        assert!(t.poll());
    }
}
