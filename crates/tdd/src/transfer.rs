//! Cross-manager diagram transfer.
//!
//! Managers are single-threaded by design (hash-consing wants exclusive
//! access), so parallel algorithms give each worker its own manager and
//! merge results afterwards. [`TddManager::import`] deep-copies a diagram
//! from another manager, re-interning weights and re-consing nodes, so the
//! result obeys this manager's canonical invariants.

use crate::hash::FastMap;
use crate::manager::TddManager;
use crate::node::{Edge, NodeId};
use qits_tensor::Var;

impl TddManager {
    /// Deep-copies the diagram rooted at `e` from `src` into `self`.
    ///
    /// The returned edge is canonical in `self`; importing the same
    /// diagram twice returns identical edges (hash-consing). Weight
    /// values are re-interned, so tolerances of the two managers need not
    /// match (the destination's discipline wins). The two managers need
    /// not agree on the variable order either: a diagram built (or
    /// sifted) under one order is re-expressed under the destination's
    /// order on the way in, so `import` stays total across dynamic
    /// reordering.
    pub fn import(&mut self, src: &TddManager, e: Edge) -> Edge {
        let mut memo: FastMap<NodeId, Edge> = FastMap::default();
        let mut branch_memo: FastMap<(Var, Edge, Edge), Edge> = FastMap::default();
        self.import_rec(src, e, &mut memo, &mut branch_memo)
    }

    fn import_rec(
        &mut self,
        src: &TddManager,
        e: Edge,
        memo: &mut FastMap<NodeId, Edge>,
        branch_memo: &mut FastMap<(Var, Edge, Edge), Edge>,
    ) -> Edge {
        if e.is_zero() {
            return Edge::ZERO;
        }
        let w = self.intern(src.weight_value(e.weight));
        if w.is_zero() {
            return Edge::ZERO;
        }
        if e.is_terminal() {
            return Edge::ZERO.with_weight(w);
        }
        if let Some(&r) = memo.get(&e.node) {
            return self.mul_weight(r, w);
        }
        let node = *src.node(e.node);
        let lo = self.import_rec(src, node.low, memo, branch_memo);
        let hi = self.import_rec(src, node.high, memo, branch_memo);
        let r = self.branch(node.var, lo, hi, branch_memo);
        memo.insert(e.node, r);
        self.mul_weight(r, w)
    }

    /// Builds the diagram `var ? high : low` even when `var` sits *below*
    /// the successor roots in this manager's order — the situation an
    /// import from a source manager with a different (e.g. sifted) order
    /// produces. While any successor's root is at or above `var`'s level,
    /// expand both successors by cofactors on the topmost such variable
    /// and recurse; once `var` genuinely tops both, this is exactly
    /// [`TddManager::make_node`] (so the aligned-order import pays only
    /// two level lookups per node). Shared with dump loading (`dump.rs`),
    /// which faces the same order-mismatch problem from serialized form.
    pub(crate) fn branch(
        &mut self,
        var: Var,
        low: Edge,
        high: Edge,
        memo: &mut FastMap<(Var, Edge, Edge), Edge>,
    ) -> Edge {
        let lv = self.level_of(var);
        let ll = if low.is_terminal() {
            u32::MAX
        } else {
            self.level_of_node(low.node)
        };
        let lh = if high.is_terminal() {
            u32::MAX
        } else {
            self.level_of_node(high.node)
        };
        if ll.min(lh) > lv {
            return self.make_node(var, low, high);
        }
        if let Some(&r) = memo.get(&(var, low, high)) {
            return r;
        }
        // `y`: the topmost successor variable (strictly above `var`; a
        // canonical source diagram never repeats `var` below itself, so
        // equality is unreachable). Shannon-expand both successors on it.
        let y = if ll <= lh {
            self.var_of(low.node)
        } else {
            self.var_of(high.node)
        };
        let (l0, l1) = self.cofactors(low, y);
        let (h0, h1) = self.cofactors(high, y);
        let r0 = self.branch(var, l0, h0, memo);
        let r1 = self.branch(var, l1, h1, memo);
        let r = self.make_node(y, r0, r1);
        memo.insert((var, low, high), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_num::Cplx;
    use qits_tensor::{Tensor, Var};

    fn sample_tensor() -> Tensor {
        Tensor::new(
            vec![Var(0), Var(1), Var(2)],
            (0..8)
                .map(|i| Cplx::new(i as f64 * 0.25 - 1.0, (i % 3) as f64 * 0.5))
                .collect(),
        )
    }

    #[test]
    fn import_preserves_values() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        let mut dst = TddManager::new();
        let imported = dst.import(&src, e);
        assert!(dst
            .to_tensor(imported, &[Var(0), Var(1), Var(2)])
            .approx_eq(&t));
    }

    #[test]
    fn import_is_canonical_in_destination() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        let mut dst = TddManager::new();
        let a = dst.import(&src, e);
        let b = dst.import(&src, e);
        let direct = dst.from_tensor(&t);
        assert_eq!(a, b);
        assert_eq!(a, direct);
    }

    #[test]
    fn import_zero_and_scalars() {
        let mut src = TddManager::new();
        let s = src.constant(Cplx::new(0.5, -0.25));
        let mut dst = TddManager::new();
        assert_eq!(dst.import(&src, Edge::ZERO), Edge::ZERO);
        let si = dst.import(&src, s);
        assert!(dst.weight_value(si.weight).approx_eq(Cplx::new(0.5, -0.25)));
    }

    #[test]
    fn import_node_count_matches() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        let mut dst = TddManager::new();
        let imported = dst.import(&src, e);
        assert_eq!(src.node_count(e), dst.node_count(imported));
    }

    #[test]
    fn import_across_mismatched_variable_orders() {
        // Source lives under the reversed order (the shape a sifted
        // manager hands back), destination under the natural order: the
        // import must re-express the diagram, not copy its nesting.
        let t = sample_tensor();
        let mut src = TddManager::new();
        src.install_order(&[Var(2), Var(1), Var(0)]);
        let e = src.from_tensor(&t);
        let mut dst = TddManager::new();
        let imported = dst.import(&src, e);
        assert!(dst
            .to_tensor(imported, &[Var(0), Var(1), Var(2)])
            .approx_eq(&t));
        // Canonical in the destination: the reordered import and a
        // natively built diagram hash-cons to the same edge.
        assert_eq!(imported, dst.from_tensor(&t));
    }

    #[test]
    fn import_from_a_sifted_source() {
        // Same, but the source order changes *after* the diagram is
        // built, via in-place level swaps.
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        src.swap_adjacent_levels(0);
        src.swap_adjacent_levels(1);
        let mut dst = TddManager::new();
        let imported = dst.import(&src, e);
        assert!(dst
            .to_tensor(imported, &[Var(0), Var(1), Var(2)])
            .approx_eq(&t));
    }

    #[test]
    fn managers_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TddManager>();
    }
}
