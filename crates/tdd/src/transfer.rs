//! Cross-manager diagram transfer.
//!
//! Managers are single-threaded by design (hash-consing wants exclusive
//! access), so parallel algorithms give each worker its own manager and
//! merge results afterwards. [`TddManager::import`] deep-copies a diagram
//! from another manager, re-interning weights and re-consing nodes, so the
//! result obeys this manager's canonical invariants.

use crate::hash::FastMap;
use crate::manager::TddManager;
use crate::node::{Edge, NodeId};

impl TddManager {
    /// Deep-copies the diagram rooted at `e` from `src` into `self`.
    ///
    /// The returned edge is canonical in `self`; importing the same
    /// diagram twice returns identical edges (hash-consing). Weight
    /// values are re-interned, so tolerances of the two managers need not
    /// match (the destination's discipline wins).
    pub fn import(&mut self, src: &TddManager, e: Edge) -> Edge {
        let mut memo: FastMap<NodeId, Edge> = FastMap::default();
        self.import_rec(src, e, &mut memo)
    }

    fn import_rec(&mut self, src: &TddManager, e: Edge, memo: &mut FastMap<NodeId, Edge>) -> Edge {
        if e.is_zero() {
            return Edge::ZERO;
        }
        let w = self.intern(src.weight_value(e.weight));
        if w.is_zero() {
            return Edge::ZERO;
        }
        if e.is_terminal() {
            return Edge::ZERO.with_weight(w);
        }
        if let Some(&r) = memo.get(&e.node) {
            return self.mul_weight(r, w);
        }
        let node = *src.node(e.node);
        let lo = self.import_rec(src, node.low, memo);
        let hi = self.import_rec(src, node.high, memo);
        let r = self.make_node(node.var, lo, hi);
        memo.insert(e.node, r);
        self.mul_weight(r, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_num::Cplx;
    use qits_tensor::{Tensor, Var};

    fn sample_tensor() -> Tensor {
        Tensor::new(
            vec![Var(0), Var(1), Var(2)],
            (0..8)
                .map(|i| Cplx::new(i as f64 * 0.25 - 1.0, (i % 3) as f64 * 0.5))
                .collect(),
        )
    }

    #[test]
    fn import_preserves_values() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        let mut dst = TddManager::new();
        let imported = dst.import(&src, e);
        assert!(dst
            .to_tensor(imported, &[Var(0), Var(1), Var(2)])
            .approx_eq(&t));
    }

    #[test]
    fn import_is_canonical_in_destination() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        let mut dst = TddManager::new();
        let a = dst.import(&src, e);
        let b = dst.import(&src, e);
        let direct = dst.from_tensor(&t);
        assert_eq!(a, b);
        assert_eq!(a, direct);
    }

    #[test]
    fn import_zero_and_scalars() {
        let mut src = TddManager::new();
        let s = src.constant(Cplx::new(0.5, -0.25));
        let mut dst = TddManager::new();
        assert_eq!(dst.import(&src, Edge::ZERO), Edge::ZERO);
        let si = dst.import(&src, s);
        assert!(dst.weight_value(si.weight).approx_eq(Cplx::new(0.5, -0.25)));
    }

    #[test]
    fn import_node_count_matches() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        let mut dst = TddManager::new();
        let imported = dst.import(&src, e);
        assert_eq!(src.node_count(e), dst.node_count(imported));
    }

    #[test]
    fn managers_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TddManager>();
    }
}
