//! Graphviz export, reproducing the visual conventions of the paper's
//! Fig. 1: one oval per node labelled with its index, blue edges for index
//! value 0, red for 1, edge labels showing non-unit weights, and the
//! incoming root edge carrying the global factor.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::manager::TddManager;
use crate::node::{Edge, NodeId};

impl TddManager {
    /// Renders the diagram rooted at `e` as a Graphviz `digraph`.
    ///
    /// ```
    /// use qits_tensor::Var;
    /// use qits_tdd::TddManager;
    ///
    /// let mut m = TddManager::new();
    /// let ket = m.basis_ket(&[Var(0)], &[true]);
    /// let dot = m.to_dot(ket, "ket1");
    /// assert!(dot.contains("digraph"));
    /// ```
    pub fn to_dot(&self, e: Edge, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        let _ = writeln!(out, "  entry [shape=point, style=invis];");

        let mut ids: HashMap<NodeId, usize> = HashMap::new();
        let mut order: Vec<NodeId> = Vec::new();
        let mut stack = vec![e.node];
        while let Some(n) = stack.pop() {
            if ids.contains_key(&n) {
                continue;
            }
            ids.insert(n, order.len());
            order.push(n);
            if !n.is_terminal() {
                let node = self.node(n);
                stack.push(node.low.node);
                stack.push(node.high.node);
            }
        }

        for n in &order {
            let id = ids[n];
            if n.is_terminal() {
                let _ = writeln!(out, "  n{id} [shape=box, label=\"1\"];");
            } else {
                let node = self.node(*n);
                let _ = writeln!(out, "  n{id} [label=\"{}\"];", node.var);
            }
        }

        let root_w = self.weight_value(e.weight);
        let _ = writeln!(out, "  entry -> n{} [label=\"{root_w}\"];", ids[&e.node]);

        for n in &order {
            if n.is_terminal() {
                continue;
            }
            let node = self.node(*n);
            let id = ids[n];
            for (succ, colour) in [(node.low, "blue"), (node.high, "red")] {
                if succ.is_zero() {
                    continue; // the paper omits weight-0 edges
                }
                let w = self.weight_value(succ.weight);
                let label = if succ.weight.is_one() {
                    String::new()
                } else {
                    format!(" [label=\"{w}\", color={colour}]")
                };
                if label.is_empty() {
                    let _ = writeln!(out, "  n{id} -> n{} [color={colour}];", ids[&succ.node]);
                } else {
                    let _ = writeln!(out, "  n{id} -> n{}{label};", ids[&succ.node]);
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_num::Cplx;
    use qits_tensor::Var;

    #[test]
    fn dot_contains_nodes_and_colours() {
        let mut m = TddManager::new();
        let v = m.product_ket(
            &[Var::wire(0, 0), Var::wire(1, 0)],
            &[
                (Cplx::FRAC_1_SQRT_2, Cplx::FRAC_1_SQRT_2),
                (Cplx::ONE, Cplx::ZERO),
            ],
        );
        let dot = m.to_dot(v, "test");
        assert!(dot.contains("digraph \"test\""));
        assert!(dot.contains("color=blue"));
        assert!(dot.contains("q1.0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn zero_edges_omitted() {
        let mut m = TddManager::new();
        let k = m.basis_ket(&[Var(0)], &[false]);
        let dot = m.to_dot(k, "k0");
        // |0> has a zero high edge — no red edge should be drawn.
        assert!(!dot.contains("color=red"));
    }
}
