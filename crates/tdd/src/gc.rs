//! Root-tracked garbage collection for the TDD node store.
//!
//! The node store of a [`TddManager`] only accumulates between collections:
//! every operation hash-conses new nodes and nothing is freed in place. The
//! paper's headline workload — reachability via repeated image computation,
//! iterating `S <- S v T(S)` on one manager — therefore accumulates every
//! dead intermediate of every slice, block, and Gram–Schmidt residual, and
//! long fixpoints become memory-bound before they are time-bound. This
//! module is the reclamation subsystem that fixes that, in the style of
//! mature decision-diagram managers: explicit root tracking plus
//! mark-and-sweep over the backed unique table (the private `table` module).
//!
//! # The generational-handle contract
//!
//! Collection **never moves a node**. A sweep frees an unreachable node by
//! bumping its slot's generation and recycling the slot, so from a
//! holder's point of view every edge is in exactly one of two states after
//! any number of collections:
//!
//! * **live** — the edge was reachable from a root at every collection; it
//!   is *bit-identical* to the day it was built and remains valid;
//! * **stale** — its node was swept; the handle's generation no longer
//!   matches the slot's, which [`TddManager::is_live`] detects. A stale
//!   handle can never silently resolve to whatever node later recycles the
//!   slot.
//!
//! There is no relocation map, no `relocate()` pass over holders, and no
//! pin/restore ceremony: holders simply keep their edges. The entire
//! root contract is:
//!
//! * [`TddManager::protect`] registers an edge as a root and returns a
//!   [`RootId`]; [`TddManager::unprotect`] releases it.
//! * [`TddManager::root_scope`] wraps the manager in a [`RootScope`] RAII
//!   guard that unprotects everything it protected when dropped — the
//!   convenient form for protecting temporaries across a collection.
//! * [`TddManager::collect_retaining`] additionally marks from a slice of
//!   [`EdgeHolder`]s for the duration of one collection — the ergonomic
//!   form when a known set of structures must survive exactly one call.
//!
//! Canonical identity is fully preserved among survivors (the unique index
//! keeps them interned; rebuilding an equal tensor returns the *same*
//! edge), and the index itself is never rebuilt by a collection — sweeps
//! only turn index entries into tombstones in place, which
//! [`crate::ManagerStats::unique_rebuilds`] lets tests assert.
//!
//! # Epoch-aware operation caches
//!
//! Operation-cache entries name generational node handles, so a collection
//! no longer invalidates them wholesale: [`crate::cache::OpCaches`] only
//! bumps its epoch, and each pre-collection entry is re-validated on its
//! next probe (value generation current ⇒ the whole memoised subgraph
//! survived, because marking is transitive) or evicted by the targeted
//! [`TddManager::purge_stale`]. Interners and the complex table survive
//! collections untouched (they key on variables and values, never nodes).
//!
//! # Automatic collection and incremental sweeps
//!
//! [`GcPolicy`] makes collection automatic at the call sites that opt in:
//! [`TddManager::maybe_collect`] and
//! [`TddManager::maybe_collect_at_safepoint`] collect only when at least
//! `min_interval` nodes were interned since the previous collection and
//! the live occupancy has grown past `watermark` times the previous
//! live set. The policy is **off by default** — a manager without a policy
//! behaves exactly like the pre-GC, grow-only arena.
//!
//! Because nodes never move, a sweep no longer has to be atomic:
//! [`GcPolicy::sweep_budget`] bounds how many slots one safepoint poll
//! sweeps, spreading reclamation across the safepoints the image pipeline
//! already polls. While a sweep is in progress, new collections are
//! deferred and interning *resurrects* any unswept node an operation asks
//! for (the private `table` module); [`TddManager::protect`] likewise rescues a
//! subgraph rooted mid-sweep.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

use crate::manager::TddManager;
use crate::node::{Edge, NodeId};

/// Handle to a protected edge in a manager's root registry.
///
/// Obtained from [`TddManager::protect`]; released with
/// [`TddManager::unprotect`]. Ids are recycled after release, so a stale
/// `RootId` must not be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RootId(u32);

/// The manager-owned root registry: a slab of protected edges.
///
/// Edges in the registry are the GC's mark sources. Collection never
/// rewrites them — it cannot, nothing moves — so a root always reads back
/// exactly the edge that was protected.
#[derive(Debug, Default)]
pub(crate) struct RootRegistry {
    slots: Vec<Option<Edge>>,
    free: Vec<u32>,
}

impl RootRegistry {
    pub(crate) fn insert(&mut self, e: Edge) -> RootId {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(e);
                RootId(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("root registry overflow");
                self.slots.push(Some(e));
                RootId(i)
            }
        }
    }

    pub(crate) fn remove(&mut self, id: RootId) -> Option<Edge> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let e = slot.take();
        if e.is_some() {
            self.free.push(id.0);
        }
        e
    }

    pub(crate) fn get(&self, id: RootId) -> Option<Edge> {
        self.slots.get(id.0 as usize).copied().flatten()
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.slots.iter().copied().flatten()
    }
}

/// When [`TddManager::maybe_collect`] actually collects, and how much of
/// the sweep one safepoint poll may run.
///
/// The policy is deliberately simple — a watermark ratio over the live set
/// plus a minimum allocation interval — because mark cost is linear in the
/// live set and sweep cost linear in the store; anything cleverer needs
/// workload knowledge the caller has and the manager does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcPolicy {
    /// Collect when the live occupancy reaches `watermark` times the live
    /// set left by the previous collection (values `< 1` are treated as
    /// `1`).
    pub watermark: f64,
    /// Never collect before this many nodes were interned since the
    /// previous collection — bounds collection *frequency* so tight loops
    /// on small diagrams do not pay a mark per iteration.
    pub min_interval: usize,
    /// Most slots one safepoint poll sweeps. `usize::MAX` (the default)
    /// completes the sweep inside the collecting poll; a finite budget
    /// amortizes the sweep across subsequent polls — new collections are
    /// deferred until it finishes.
    pub sweep_budget: usize,
    /// When safepoint polls run a **dynamic variable reordering** pass
    /// (a full [`TddManager::sift_all`]) right after collecting — the
    /// moment the live set is minimal and sifting is cheapest. Off by
    /// default.
    pub reorder: ReorderPolicy,
    /// Growth cap handed to [`TddManager::sift_all`] by scheduled
    /// reordering passes: while sifting one variable, abort a direction
    /// once the live set exceeds this factor of its pre-sift size
    /// (Rudell's classic dampener; values `< 1` are treated as `1`).
    pub reorder_growth_cap: f64,
}

/// When the GC safepoint schedule triggers a sifting pass (see
/// [`GcPolicy::reorder`]). Reordering is always coupled to a collection:
/// the pass runs right after marking shrinks the store to the live set,
/// and variants that fire when the watermark would not have also force
/// the collection itself.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReorderPolicy {
    /// Never reorder (the default).
    #[default]
    Off,
    /// Sift after every safepoint collection the watermark triggers.
    EveryCollection,
    /// Force a collect-and-sift once the live occupancy grows past
    /// `factor` times the live set left by the previous sifting pass
    /// (values `< 1` are treated as `1`).
    OnGrowth {
        /// Growth ratio over the post-sift baseline that triggers a pass.
        factor: f64,
    },
    /// Force a collect-and-sift every `n` safepoint polls (values `< 1`
    /// are treated as `1`).
    EveryNSafepoints {
        /// Polls between forced passes.
        n: u64,
    },
}

impl Default for GcPolicy {
    /// Collect when the live set doubles, at most every 2¹⁶ allocations,
    /// sweeping in one step, never reordering.
    fn default() -> Self {
        GcPolicy {
            watermark: 2.0,
            min_interval: 1 << 16,
            sweep_budget: usize::MAX,
            reorder: ReorderPolicy::Off,
            reorder_growth_cap: 1.2,
        }
    }
}

impl GcPolicy {
    /// Collects at every opportunity — maximal reclamation, maximal
    /// overhead. Intended for tests and for measuring GC cost.
    pub fn aggressive() -> Self {
        GcPolicy {
            watermark: 1.0,
            min_interval: 0,
            ..GcPolicy::default()
        }
    }

    /// This policy with the per-safepoint sweep budget set to `budget`
    /// slots.
    pub fn with_sweep_budget(mut self, budget: usize) -> Self {
        self.sweep_budget = budget;
        self
    }

    /// This policy with the given reordering schedule.
    pub fn with_reorder(mut self, reorder: ReorderPolicy) -> Self {
        self.reorder = reorder;
        self
    }

    /// This policy with the sifting growth cap set to `cap`.
    pub fn with_reorder_growth_cap(mut self, cap: f64) -> Self {
        self.reorder_growth_cap = cap;
        self
    }
}

/// What one [`TddManager::collect`] call did.
#[derive(Debug, Clone, Copy)]
pub struct GcOutcome {
    /// Nodes swept. Under a finite [`GcPolicy::sweep_budget`] this counts
    /// only the slots the collecting poll itself swept; the remainder is
    /// folded into [`crate::ManagerStats::nodes_reclaimed`] by later polls.
    pub reclaimed: usize,
    /// Non-terminal nodes that were marked reachable.
    pub live: usize,
}

/// A structure holding long-lived [`Edge`]s that can ride through a
/// collection by exposing them as mark roots.
///
/// Implemented for [`Edge`], slices, vectors, and references here, and by
/// the higher-level holders (subspaces, transition systems, tensor
/// networks) in their own crates. Since collection never moves a node,
/// this is the *entire* holder obligation — there is no relocate or
/// restore step; the holder's edges are simply still valid afterwards.
pub trait EdgeHolder {
    /// Calls `visit` on every edge this holder owns.
    fn gc_edges(&self, visit: &mut dyn FnMut(Edge));
}

impl EdgeHolder for Edge {
    fn gc_edges(&self, visit: &mut dyn FnMut(Edge)) {
        visit(*self);
    }
}

impl<T: EdgeHolder> EdgeHolder for [T] {
    fn gc_edges(&self, visit: &mut dyn FnMut(Edge)) {
        for t in self {
            t.gc_edges(visit);
        }
    }
}

impl<T: EdgeHolder> EdgeHolder for Vec<T> {
    fn gc_edges(&self, visit: &mut dyn FnMut(Edge)) {
        self.as_slice().gc_edges(visit);
    }
}

impl<T: EdgeHolder + ?Sized> EdgeHolder for &T {
    fn gc_edges(&self, visit: &mut dyn FnMut(Edge)) {
        (**self).gc_edges(visit);
    }
}

/// RAII guard pairing a manager borrow with a set of scoped roots.
///
/// Derefs to the [`TddManager`], so operations run through the guard; any
/// edge passed to [`RootScope::protect`] is unprotected again when the
/// guard drops. This is the intended way to hold temporaries across a
/// [`TddManager::collect`] / [`TddManager::maybe_collect`]:
///
/// ```
/// use qits_tdd::{GcPolicy, TddManager};
/// use qits_tensor::Var;
///
/// let mut m = TddManager::new();
/// let mut scope = m.root_scope();
/// let e = scope.identity(Var(0), Var(1));
/// scope.protect(e);
/// let outcome = scope.collect();
/// // `e` is bit-identical after the collection — nothing moved.
/// assert_eq!(scope.node_count(e), 3);
/// drop(scope); // unprotects `e`
/// assert_eq!(m.root_count(), 0);
/// # let _ = outcome;
/// # let _ = GcPolicy::default();
/// ```
#[derive(Debug)]
pub struct RootScope<'m> {
    m: &'m mut TddManager,
    roots: Vec<RootId>,
}

impl RootScope<'_> {
    /// Protects `e` for the lifetime of this scope.
    pub fn protect(&mut self, e: Edge) -> RootId {
        let id = self.m.protect(e);
        self.roots.push(id);
        id
    }
}

impl Deref for RootScope<'_> {
    type Target = TddManager;

    fn deref(&self) -> &TddManager {
        self.m
    }
}

impl DerefMut for RootScope<'_> {
    fn deref_mut(&mut self) -> &mut TddManager {
        self.m
    }
}

impl Drop for RootScope<'_> {
    fn drop(&mut self) {
        for id in self.roots.drain(..) {
            self.m.unprotect(id);
        }
    }
}

impl TddManager {
    // ------------------------------------------------------------------
    // Root management.
    // ------------------------------------------------------------------

    /// Registers `e` as a GC root: the diagram below it survives every
    /// collection, bit-identically.
    ///
    /// Protecting an edge while an incremental sweep is in progress also
    /// re-marks its (still unswept) subgraph, so rooting is safe at any
    /// point between safepoints.
    pub fn protect(&mut self, e: Edge) -> RootId {
        self.unique.mark_live_subgraph(e.node);
        self.roots.insert(e)
    }

    /// Releases a root. Releasing an already-released id is a no-op.
    pub fn unprotect(&mut self, id: RootId) {
        let _ = self.roots.remove(id);
    }

    /// Releases a batch of roots (the shape `Subspace::protect` returns).
    pub fn unprotect_all<I: IntoIterator<Item = RootId>>(&mut self, ids: I) {
        for id in ids {
            self.unprotect(id);
        }
    }

    /// The edge behind a root — exactly the edge that was protected
    /// (collection never rewrites it).
    ///
    /// # Panics
    ///
    /// Panics if the root was released.
    pub fn root_edge(&self, id: RootId) -> Edge {
        self.roots.get(id).expect("root was released")
    }

    /// Number of live roots.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Opens an RAII scope whose roots are released when it drops.
    pub fn root_scope(&mut self) -> RootScope<'_> {
        RootScope {
            m: self,
            roots: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Policy.
    // ------------------------------------------------------------------

    /// Installs (or removes, with `None`) the automatic-collection policy
    /// consulted by [`TddManager::maybe_collect`]. `None` — the default —
    /// restores the grow-only behaviour.
    pub fn set_gc_policy(&mut self, policy: Option<GcPolicy>) {
        self.gc_policy = policy;
    }

    /// The installed automatic-collection policy, if any.
    pub fn gc_policy(&self) -> Option<GcPolicy> {
        self.gc_policy
    }

    /// Whether a mark has run whose (incremental) sweep has not finished.
    /// While true, new collections are deferred; safepoint polls drain the
    /// pending sweep instead.
    pub fn sweep_in_progress(&self) -> bool {
        self.unique.sweep_in_progress()
    }

    /// Whether the installed policy asks for a collection right now.
    /// Always `false` without a policy, and while a sweep is in progress.
    pub fn should_collect(&self) -> bool {
        match self.gc_policy {
            None => false,
            Some(p) => {
                !self.unique.sweep_in_progress()
                    && self.allocs_since_gc >= p.min_interval.max(1) as u64
                    && self.unique.occupied() as f64 >= self.gc_floor as f64 * p.watermark.max(1.0)
            }
        }
    }

    /// Collects if (and only if) the installed policy asks for it.
    pub fn maybe_collect(&mut self) -> Option<GcOutcome> {
        if self.should_collect() {
            Some(self.collect())
        } else {
            None
        }
    }

    /// Marks from the registry plus `holders` and sweeps up to `budget`
    /// slots, finishing any sweep a previous bounded collection left
    /// behind first. The shared core of every collection entry point.
    fn collect_with_budget(&mut self, holders: &[&dyn EdgeHolder], budget: usize) -> GcOutcome {
        let start = Instant::now();
        let mut reclaimed = 0usize;
        if self.unique.sweep_in_progress() {
            reclaimed += self.unique.sweep_step(usize::MAX).0;
        }
        // Mark.
        self.unique.begin_mark();
        let mut stack: Vec<u32> = self
            .roots
            .iter()
            .filter(|e| !e.node.is_terminal())
            .map(|e| e.node.idx)
            .collect();
        for h in holders {
            h.gc_edges(&mut |e| {
                if !e.node.is_terminal() {
                    stack.push(e.node.idx);
                }
            });
        }
        let live = self.unique.mark_reachable(&mut stack);
        // Caches keep their entries; the epoch bump forces re-validation.
        self.caches.on_collect();
        // Sweep (possibly just the first installment).
        self.unique.begin_sweep();
        reclaimed += self.unique.sweep_step(budget).0;
        self.stats.gc_runs += 1;
        self.stats.nodes_reclaimed += reclaimed as u64;
        self.stats.live_after_last_gc = live;
        self.gc_floor = live.max(1);
        self.allocs_since_gc = 0;
        self.stats.gc_nanos += start.elapsed().as_nanos() as u64;
        GcOutcome { reclaimed, live }
    }

    /// The whole collection in one call with extra mark roots: everything
    /// reachable from the registry **or** from an edge a holder exposes
    /// survives. Holders need no cleanup afterwards — their edges are
    /// untouched.
    pub fn collect_retaining(&mut self, holders: &[&dyn EdgeHolder]) -> GcOutcome {
        self.collect_with_budget(holders, usize::MAX)
    }

    /// Polls a **GC safepoint**: a point where the caller's `holders`
    /// (plus the registry) are exactly the structures that must survive a
    /// collection.
    ///
    /// Every poll is counted in [`crate::ManagerStats::safepoints_polled`].
    /// If an incremental sweep is pending, the poll runs one
    /// [`GcPolicy::sweep_budget`]-bounded installment of it (folding the
    /// reclaimed slots into [`crate::ManagerStats::nodes_reclaimed`]) and
    /// returns `None`. Otherwise it collects iff the installed policy asks
    /// for it, sweeping up to the budget, and counts the collection in
    /// [`crate::ManagerStats::safepoint_collections`].
    ///
    /// This is also the **dynamic-reordering schedule**: when
    /// [`GcPolicy::reorder`] declares a sifting pass due, the poll forces
    /// a full (unbudgeted) collection — `holders` plus the registry are
    /// exactly the live set — and runs [`TddManager::sift_all`] on the
    /// minimal store. Every held edge remains valid through the pass
    /// (reordering rewrites node *contents*, never handles).
    pub fn maybe_collect_at_safepoint(&mut self, holders: &[&dyn EdgeHolder]) -> Option<GcOutcome> {
        self.stats.safepoints_polled += 1;
        self.safepoints_since_reorder += 1;
        // Cancellation rides the safepoint cadence and is checked before
        // the policy gate so GC-free sessions stay cancellable too.
        // `resume_unwind` rather than `panic_any`: cancellation is a
        // routine serving event, caught and converted at the operation
        // boundary, so it must not invoke the panic hook (which would
        // print a backtrace per cancelled job).
        if let Some(token) = &self.cancel_token {
            if token.poll() {
                std::panic::resume_unwind(Box::new(crate::OperationCancelled {
                    polls: token.polls(),
                }));
            }
        }
        if self.unique.sweep_in_progress() {
            let budget = self.gc_policy.map_or(usize::MAX, |p| p.sweep_budget);
            let start = Instant::now();
            let (reclaimed, _done) = self.unique.sweep_step(budget);
            self.stats.nodes_reclaimed += reclaimed as u64;
            self.stats.gc_nanos += start.elapsed().as_nanos() as u64;
            return None;
        }
        let p = self.gc_policy?;
        let reorder_due = self.reorder_due(&p);
        if !self.should_collect() && !reorder_due {
            return None;
        }
        // A sifting pass needs a completed sweep (it walks every live
        // slot), so a reorder-due poll ignores the incremental budget.
        let budget = if reorder_due {
            usize::MAX
        } else {
            p.sweep_budget
        };
        let out = self.collect_with_budget(holders, budget);
        self.stats.safepoint_collections += 1;
        if reorder_due {
            self.reorder_after_collect(holders, &p);
        }
        Some(out)
    }

    /// Whether the installed reordering schedule wants a sifting pass at
    /// this safepoint.
    fn reorder_due(&self, p: &GcPolicy) -> bool {
        match p.reorder {
            ReorderPolicy::Off => false,
            ReorderPolicy::EveryCollection => self.should_collect(),
            ReorderPolicy::OnGrowth { factor } => {
                self.unique.occupied() as f64 >= self.reorder_baseline as f64 * factor.max(1.0)
            }
            ReorderPolicy::EveryNSafepoints { n } => self.safepoints_since_reorder >= n.max(1),
        }
    }

    /// Runs the scheduled sifting pass on the freshly collected store and
    /// resets the schedule's baselines.
    fn reorder_after_collect(&mut self, holders: &[&dyn EdgeHolder], p: &GcPolicy) {
        debug_assert!(!self.sweep_in_progress());
        self.sift_all(holders, p.reorder_growth_cap);
        self.reorder_baseline = self.unique.occupied().max(1);
        self.safepoints_since_reorder = 0;
    }

    // ------------------------------------------------------------------
    // Collection.
    // ------------------------------------------------------------------

    /// Mark-and-sweep collection over the root registry.
    ///
    /// Marks every node reachable from a protected edge and sweeps the
    /// rest **in place**: each unreachable node's slot generation is
    /// bumped (stale handles become detectable, never dangling) and the
    /// slot is recycled for future nodes. Nothing moves, the unique index
    /// is not rebuilt, and operation caches keep their entries for lazy
    /// re-validation. Counters are folded into [`crate::ManagerStats`].
    pub fn collect(&mut self) -> GcOutcome {
        self.collect_retaining(&[])
    }

    /// Number of distinct non-terminal nodes reachable from the root
    /// registry plus `extra` — the live set a collection run right now
    /// would keep. `O(live)`; does not modify the manager.
    pub fn live_node_count(&self, extra: &[Edge]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<NodeId> = self
            .roots
            .iter()
            .chain(extra.iter().copied())
            .map(|e| e.node)
            .filter(|n| !n.is_terminal())
            .collect();
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.node(n);
            if !node.low.node.is_terminal() {
                stack.push(node.low.node);
            }
            if !node.high.node.is_terminal() {
                stack.push(node.high.node);
            }
        }
        count
    }

    /// Collections performed so far (equals the current cache epoch).
    pub fn gc_runs(&self) -> u64 {
        self.stats.gc_runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_num::Cplx;
    use qits_tensor::{Tensor, Var};

    fn sample_tensor(seed: u64) -> Tensor {
        let data: Vec<Cplx> = (0..8u64)
            .map(|i| {
                let x = (i * 7 + seed * 13 + 3) % 17;
                Cplx::new(x as f64 * 0.125 - 1.0, (x % 5) as f64 * 0.25)
            })
            .collect();
        Tensor::new(vec![Var(0), Var(1), Var(2)], data)
    }

    #[test]
    fn collect_without_roots_empties_the_store() {
        let mut m = TddManager::new();
        let _garbage = m.from_tensor(&sample_tensor(1));
        assert!(m.arena_occupied() > 0);
        let out = m.collect();
        assert_eq!(m.arena_occupied(), 0, "only the terminal survives");
        assert_eq!(out.live, 0);
        assert!(out.reclaimed > 0);
        assert_eq!(m.arena_free(), out.reclaimed, "slots land on the free list");
        assert_eq!(m.stats().nodes_reclaimed, out.reclaimed as u64);
    }

    #[test]
    fn rooted_diagram_survives_bit_identically() {
        let mut m = TddManager::new();
        let t = sample_tensor(2);
        let e = m.from_tensor(&t);
        let before = m.to_tensor(e, &[Var(0), Var(1), Var(2)]);
        let _garbage = m.from_tensor(&sample_tensor(3));
        let id = m.protect(e);
        m.collect();
        // The defining property of generational handles: nothing moved.
        assert_eq!(m.root_edge(id), e);
        assert!(m.is_live(e));
        let after = m.to_tensor(e, &[Var(0), Var(1), Var(2)]);
        assert!(after.approx_eq(&before));
        assert_eq!(m.arena_occupied(), m.node_count(e));
    }

    #[test]
    fn canonical_identity_survives_collection() {
        // Rebuilding the same tensor after a collection must hash-cons to
        // exactly the original edge: survivors stay interned.
        let mut m = TddManager::new();
        let t = sample_tensor(4);
        let e = m.from_tensor(&t);
        m.protect(e);
        m.collect();
        let rebuilt = m.from_tensor(&t);
        assert_eq!(rebuilt, e);
    }

    #[test]
    fn dead_edges_are_detectably_stale() {
        let mut m = TddManager::new();
        let keep = m.from_tensor(&sample_tensor(5));
        let drop_ = m.from_tensor(&sample_tensor(6));
        m.protect(keep);
        let out = m.collect();
        assert!(out.reclaimed > 0);
        assert!(m.is_live(keep));
        assert!(!m.is_live(drop_), "swept edge must be detectably stale");
    }

    #[test]
    fn swept_slots_recycle_under_a_new_generation() {
        let mut m = TddManager::new();
        let dead = m.from_tensor(&sample_tensor(7));
        let allocated = m.arena_len();
        m.collect();
        assert!(!m.is_live(dead));
        // Rebuilding reuses the freed slots without growing the store, and
        // the stale handle can never alias the recycled nodes.
        let rebuilt = m.from_tensor(&sample_tensor(7));
        assert!(m.is_live(rebuilt));
        assert_ne!(rebuilt, dead, "recycled slot must carry a new generation");
        assert!(!m.is_live(dead), "old handle stays stale forever");
        assert_eq!(m.arena_len(), allocated, "churn must not grow the store");
    }

    #[test]
    fn scalar_and_zero_edges_are_always_live() {
        let mut m = TddManager::new();
        let s = m.constant(Cplx::new(0.5, -0.25));
        m.collect();
        assert!(m.is_live(Edge::ZERO));
        assert!(m.is_live(Edge::ONE));
        assert!(m.is_live(s), "terminal edges never die");
    }

    #[test]
    fn root_scope_unprotects_on_drop() {
        let mut m = TddManager::new();
        let e = m.from_tensor(&sample_tensor(8));
        {
            let mut scope = m.root_scope();
            scope.protect(e);
            assert_eq!(scope.root_count(), 1);
        }
        assert_eq!(m.root_count(), 0);
        m.collect();
        assert_eq!(m.arena_occupied(), 0);
    }

    #[test]
    fn unprotect_is_idempotent_and_ids_recycle() {
        let mut m = TddManager::new();
        let e = m.from_tensor(&sample_tensor(9));
        let a = m.protect(e);
        m.unprotect(a);
        m.unprotect(a); // no-op
        assert_eq!(m.root_count(), 0);
        let b = m.protect(e);
        assert_eq!(m.root_count(), 1);
        assert_eq!(m.root_edge(b), e);
    }

    #[test]
    fn caches_survive_collection_and_purge_stale_evicts_dead_entries() {
        let mut m = TddManager::new();
        let a = m.from_tensor(&sample_tensor(10));
        let b = m.from_tensor(&sample_tensor(11));
        let r = m.add(a, b);
        let entries = m.cache_sizes().total();
        assert!(entries > 0);
        let roots = vec![m.protect(a), m.protect(b), m.protect(r)];
        m.collect();
        // Collection keeps every entry: they name generational handles and
        // everything cached here is about rooted (surviving) diagrams.
        assert_eq!(
            m.cache_sizes().total(),
            entries,
            "collection must not flush caches"
        );
        assert_eq!(m.purge_stale(), 0, "no dead entries while everything lives");
        // Drop the roots and collect again: now every memo names dead
        // nodes, and the targeted purge evicts exactly those.
        m.unprotect_all(roots);
        m.collect();
        let purged = m.purge_stale();
        assert_eq!(purged, entries as u64, "all entries named swept nodes");
        assert_eq!(m.cache_sizes().total(), 0);
        assert!(m.stats().add_cache.purged > 0);
    }

    #[test]
    fn operations_recompute_identically_after_collection() {
        let (ta, tb) = (sample_tensor(12), sample_tensor(13));
        let mut m = TddManager::new();
        let a = m.from_tensor(&ta);
        let b = m.from_tensor(&tb);
        let sum_before = m.add(a, b);
        m.protect(a);
        m.protect(b);
        m.protect(sum_before);
        m.collect();
        // Operands are untouched, and re-adding them re-canonicalises to
        // the exact pre-collection result.
        let sum_after = m.add(a, b);
        assert_eq!(sum_after, sum_before);
        let vars = [Var(0), Var(1), Var(2)];
        assert!(m.to_tensor(sum_after, &vars).approx_eq(&ta.add(&tb)));
    }

    #[test]
    fn policy_watermark_and_interval_gate_collection() {
        let mut m = TddManager::new();
        assert!(!m.should_collect(), "no policy: never collect");
        m.set_gc_policy(Some(GcPolicy {
            min_interval: 1 << 20,
            ..GcPolicy::default()
        }));
        let _ = m.from_tensor(&sample_tensor(14));
        assert!(!m.should_collect(), "min_interval not reached");
        m.set_gc_policy(Some(GcPolicy::aggressive()));
        assert!(m.should_collect());
        let out = m.maybe_collect().expect("aggressive policy collects");
        assert!(out.reclaimed > 0);
        assert!(!m.should_collect(), "store is clean right after a collect");
        assert!(m.maybe_collect().is_none());
    }

    #[test]
    fn collect_retaining_marks_from_holders() {
        let mut m = TddManager::new();
        let t = sample_tensor(20);
        let keep = m.from_tensor(&t);
        let kept_many = vec![m.from_tensor(&sample_tensor(21))];
        let _garbage = m.from_tensor(&sample_tensor(22));
        let out = m.collect_retaining(&[&keep, &kept_many]);
        assert!(out.reclaimed > 0);
        assert_eq!(m.root_count(), 0, "holders are not registry roots");
        // No relocation step: the holders' edges are simply still valid.
        assert!(m.is_live(keep) && m.is_live(kept_many[0]));
        assert!(m.to_tensor(keep, &[Var(0), Var(1), Var(2)]).approx_eq(&t));
        assert_eq!(m.arena_occupied(), m.live_node_count(&[keep, kept_many[0]]));
    }

    #[test]
    fn protected_edges_survive_multiple_collections_bit_identically() {
        // The scenario that used to need pin/unpin ceremony: a holder kept
        // alive across several sweeps. With generational handles, rooting
        // is the whole story — the held edges never change.
        let mut m = TddManager::new();
        let t = sample_tensor(30);
        let keep = m.from_tensor(&t);
        let nested = [m.from_tensor(&sample_tensor(31))];
        let r0 = m.protect(keep);
        let r1 = m.protect(nested[0]);
        let _g1 = m.from_tensor(&sample_tensor(32));
        m.collect();
        let _g2 = m.from_tensor(&sample_tensor(33));
        m.collect();
        m.unprotect_all([r0, r1]);
        assert_eq!(m.root_count(), 0);
        assert!(m.is_live(keep) && m.is_live(nested[0]));
        let vars = [Var(0), Var(1), Var(2)];
        assert!(m.to_tensor(keep, &vars).approx_eq(&t));
        assert!(m.to_tensor(nested[0], &vars).approx_eq(&sample_tensor(31)));
    }

    #[test]
    fn safepoint_counters_track_polls_and_collections() {
        let mut m = TddManager::new();
        let t = sample_tensor(35);
        let e = m.from_tensor(&t);
        // No policy: the poll is counted, nothing collects.
        assert!(m.maybe_collect_at_safepoint(&[&e]).is_none());
        assert_eq!(m.stats().safepoints_polled, 1);
        assert_eq!(m.stats().safepoint_collections, 0);
        // Aggressive policy: the next poll collects and retains `e`.
        let _garbage = m.from_tensor(&sample_tensor(36));
        m.set_gc_policy(Some(GcPolicy::aggressive()));
        let out = m.maybe_collect_at_safepoint(&[&e]);
        assert!(out.expect("must collect").reclaimed > 0);
        assert_eq!(m.stats().safepoints_polled, 2);
        assert_eq!(m.stats().safepoint_collections, 1);
        assert!(m.to_tensor(e, &[Var(0), Var(1), Var(2)]).approx_eq(&t));
        // The counters diff like any other ManagerStats counter.
        let snap = m.stats();
        let _ = m.maybe_collect_at_safepoint(&[&e]);
        let moved = m.stats().since(&snap);
        assert_eq!(moved.safepoints_polled, 1);
    }

    #[test]
    fn collection_never_rebuilds_the_unique_index() {
        // The acceptance criterion of the backed-table refactor: GC cost
        // no longer includes a unique-table rebuild. Rebuilds happen only
        // under load-factor pressure, which this tiny workload never hits.
        let mut m = TddManager::new();
        let e = m.from_tensor(&sample_tensor(40));
        m.protect(e);
        let rebuilds_before = m.stats().unique_rebuilds;
        for seed in 41..46 {
            let _g = m.from_tensor(&sample_tensor(seed));
            m.collect();
        }
        assert!(m.stats().gc_runs >= 5);
        assert_eq!(
            m.stats().unique_rebuilds,
            rebuilds_before,
            "collections must never rebuild the unique index"
        );
        assert!(m.stats().generation_bumps > 0, "sweeps bump generations");
        assert!(m.stats().tombstones_created > 0, "sweeps leave tombstones");
        assert!(m.is_live(e));
    }

    #[test]
    fn incremental_sweep_amortizes_reclamation_across_safepoints() {
        let mut m = TddManager::new();
        let keep = m.from_tensor(&sample_tensor(50));
        let _garbage = m.from_tensor(&sample_tensor(51));
        m.set_gc_policy(Some(GcPolicy::aggressive().with_sweep_budget(2)));
        let out = m
            .maybe_collect_at_safepoint(&[&keep])
            .expect("aggressive policy collects");
        assert!(out.live > 0);
        assert!(
            m.sweep_in_progress(),
            "a 2-slot budget must leave the sweep unfinished"
        );
        let after_first = m.stats().nodes_reclaimed;
        let collections = m.stats().safepoint_collections;
        let mut polls = 0;
        while m.sweep_in_progress() {
            assert!(
                m.maybe_collect_at_safepoint(&[&keep]).is_none(),
                "amortizing polls must not start a new collection"
            );
            polls += 1;
            assert!(polls < 10_000, "sweep cursor must terminate");
        }
        assert!(polls > 0);
        assert!(
            m.stats().nodes_reclaimed > after_first,
            "later installments must keep reclaiming"
        );
        assert_eq!(
            m.stats().safepoint_collections,
            collections,
            "draining the sweep is not a new collection"
        );
        assert!(m.is_live(keep));
        assert_eq!(m.arena_occupied(), m.node_count(keep));
    }

    #[test]
    fn protect_during_incremental_sweep_rescues_the_subgraph() {
        let mut m = TddManager::new();
        let a = m.from_tensor(&sample_tensor(60));
        let b = m.from_tensor(&sample_tensor(61));
        m.protect(a);
        m.set_gc_policy(Some(GcPolicy::aggressive().with_sweep_budget(1)));
        // The collecting poll marks only `a` and sweeps one slot (a's
        // first node — marked, so nothing is reclaimed yet). `b`'s slots
        // all come later in the cursor's order.
        assert!(m.maybe_collect_at_safepoint(&[]).is_some());
        assert!(m.sweep_in_progress());
        // Rooting `b` mid-sweep re-marks its subgraph before the cursor
        // reaches it.
        m.protect(b);
        while m.sweep_in_progress() {
            m.maybe_collect_at_safepoint(&[]);
        }
        assert!(m.is_live(a));
        assert!(m.is_live(b), "mid-sweep protect must rescue the subgraph");
    }

    #[test]
    fn live_node_count_tracks_roots_and_extras() {
        let mut m = TddManager::new();
        let a = m.from_tensor(&sample_tensor(15));
        let b = m.from_tensor(&sample_tensor(16));
        assert_eq!(m.live_node_count(&[]), 0);
        m.protect(a);
        assert_eq!(m.live_node_count(&[]), m.node_count(a));
        let both = m.live_node_count(&[b]);
        assert!(both >= m.node_count(a).max(m.node_count(b)));
        assert!(both <= m.node_count(a) + m.node_count(b));
    }

    #[test]
    fn gc_runs_counts_collections() {
        let mut m = TddManager::new();
        assert_eq!(m.gc_runs(), 0);
        m.collect();
        m.collect();
        assert_eq!(m.gc_runs(), 2);
        assert_eq!(m.stats().gc_runs, 2);
    }
}
