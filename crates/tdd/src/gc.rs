//! Root-tracked garbage collection for the TDD arena.
//!
//! The arena of a [`TddManager`] is append-only between collections: every
//! operation hash-conses new nodes and nothing is ever freed in place. The
//! paper's headline workload — reachability via repeated image computation,
//! iterating `S <- S v T(S)` on one manager — therefore accumulates every
//! dead intermediate of every slice, block, and Gram–Schmidt residual, and
//! long fixpoints become memory-bound before they are time-bound. This
//! module is the reclamation subsystem that fixes that, in the style of
//! mature decision-diagram managers: explicit root tracking plus
//! mark-and-sweep.
//!
//! # The root contract
//!
//! Collection is always **explicit**: it runs only when [`TddManager::collect`]
//! (or [`TddManager::maybe_collect`]) is called, never implicitly inside an
//! operation. At a collection, the set of live diagrams is exactly the set
//! reachable from the **root registry**:
//!
//! * [`TddManager::protect`] registers an edge as a root and returns a
//!   [`RootId`]; [`TddManager::unprotect`] releases it.
//! * [`TddManager::root_scope`] wraps the manager in a [`RootScope`] RAII
//!   guard that unprotects everything it protected when dropped — the
//!   convenient form for protecting temporaries across a collection.
//!
//! The sweep **compacts** the arena: surviving nodes are renumbered densely
//! and the unique table is rebuilt, so canonical identity (hash-consing:
//! equal tensors ⇔ equal edges) is fully preserved among survivors. The
//! price of compaction is that every raw [`Edge`] held outside the manager
//! is renumbered too. Two mechanisms keep holders sound:
//!
//! 1. edges in the root registry are rewritten in place — after a
//!    collection, [`TddManager::root_edge`] returns the relocated edge;
//! 2. [`TddManager::collect`] returns a [`Relocations`] map, and every
//!    layer that holds long-lived raw edges (subspaces, tensor networks,
//!    pre-contracted blocks) exposes a `relocate` method that rewrites its
//!    copies through it.
//!
//! An edge that was neither rooted nor remapped is **dead** after a
//! collection: dereferencing it is a logic error (it names a recycled or
//! out-of-range slot). [`Relocations::try_apply`] returns `None` for such
//! edges, which is how the tests assert reclamation actually happened.
//!
//! # Epoch-aware operation caches
//!
//! Operation-cache entries key on [`crate::NodeId`]s, which a compaction
//! renumbers, so every entry written before a collection is invalid after
//! it. Each cache entry carries the **GC epoch** it was written in; a
//! collection advances the epoch and purges stale entries (counted in
//! [`crate::CacheStats::purged`]), and lookups ignore entries from older
//! epochs. Interners ([`crate::cache::SumInterner`],
//! [`crate::cache::RenameInterner`]) key on variables, not nodes, and
//! survive collections untouched, as does the complex table (weights are
//! value-interned and never relocated).
//!
//! # Automatic collection
//!
//! [`GcPolicy`] makes collection automatic at the call sites that opt in:
//! [`TddManager::maybe_collect`] collects only when the arena has grown
//! past `watermark` times its size after the previous collection and at
//! least `min_interval` nodes were allocated since. The policy is **off by
//! default** — a manager without a policy behaves exactly like the
//! pre-GC, grow-only arena. The reachability fixpoint drivers in the
//! `qits` crate and the per-worker managers of the parallel addition
//! partition check the policy between iterations / slices.

use std::ops::{Deref, DerefMut};

use crate::manager::TddManager;
use crate::node::{Edge, Node, NodeId, TERMINAL};

/// Handle to a protected edge in a manager's root registry.
///
/// Obtained from [`TddManager::protect`]; released with
/// [`TddManager::unprotect`]. Ids are recycled after release, so a stale
/// `RootId` must not be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RootId(u32);

/// The manager-owned root registry: a slab of protected edges.
///
/// Edges in the registry are updated in place by the sweep, so a root
/// always refers to the protected diagram regardless of how many
/// collections have run.
#[derive(Debug, Default)]
pub(crate) struct RootRegistry {
    slots: Vec<Option<Edge>>,
    free: Vec<u32>,
}

impl RootRegistry {
    pub(crate) fn insert(&mut self, e: Edge) -> RootId {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(e);
                RootId(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("root registry overflow");
                self.slots.push(Some(e));
                RootId(i)
            }
        }
    }

    pub(crate) fn remove(&mut self, id: RootId) -> Option<Edge> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let e = slot.take();
        if e.is_some() {
            self.free.push(id.0);
        }
        e
    }

    pub(crate) fn get(&self, id: RootId) -> Option<Edge> {
        self.slots.get(id.0 as usize).copied().flatten()
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.slots.iter().copied().flatten()
    }

    fn relocate(&mut self, r: &Relocations) {
        for e in self.slots.iter_mut().flatten() {
            *e = r.apply(*e);
        }
    }
}

/// Where every node went in one collection: old [`NodeId`] → new.
///
/// Returned by [`TddManager::collect`] so holders of raw edges can rewrite
/// their copies. The map is only meaningful for edges that existed *at*
/// the collection; applying it to an edge created afterwards panics.
#[derive(Debug, Clone)]
pub struct Relocations {
    /// Indexed by old node id; [`Relocations::DEAD`] marks a swept node.
    map: Vec<u32>,
}

impl Relocations {
    const DEAD: u32 = u32::MAX;

    /// Rewrites an edge through the relocation, or `None` if its node was
    /// swept (the edge was garbage at the collection).
    ///
    /// # Panics
    ///
    /// Panics if the edge's node id postdates the collection.
    pub fn try_apply(&self, e: Edge) -> Option<Edge> {
        let old = e.node.index();
        assert!(
            old < self.map.len(),
            "edge (node {old}) was created after this collection"
        );
        match self.map[old] {
            Self::DEAD => None,
            new => Some(Edge {
                node: NodeId::from_index(new as usize),
                weight: e.weight,
            }),
        }
    }

    /// Rewrites an edge through the relocation.
    ///
    /// # Panics
    ///
    /// Panics if the edge was dead at the collection (not reachable from
    /// any root) or postdates it — both are root-safety bugs in the
    /// caller: every long-lived edge must be protected before collecting.
    pub fn apply(&self, e: Edge) -> Edge {
        self.try_apply(e)
            .expect("edge was not rooted at the collection (root-safety violation)")
    }

    /// Rewrites a slice of edges in place (all must have survived).
    pub fn apply_all(&self, edges: &mut [Edge]) {
        for e in edges {
            *e = self.apply(*e);
        }
    }

    /// Arena size (in nodes, terminal included) at the collection.
    pub fn old_len(&self) -> usize {
        self.map.len()
    }
}

/// When [`TddManager::maybe_collect`] actually collects.
///
/// The policy is deliberately simple — a watermark ratio over the live set
/// plus a minimum allocation interval — because collection cost is linear
/// in the arena and mark cost linear in the live set; anything cleverer
/// needs workload knowledge the caller has and the manager does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcPolicy {
    /// Collect when `arena_len() >= watermark * floor`, where `floor` is
    /// the arena size right after the previous collection (values `< 1`
    /// are treated as `1`).
    pub watermark: f64,
    /// Never collect before this many nodes were allocated since the
    /// previous collection — bounds collection *frequency* so tight loops
    /// on small diagrams do not pay a sweep per iteration.
    pub min_interval: usize,
}

impl Default for GcPolicy {
    /// Collect when the arena doubles, at most every 2¹⁶ allocations.
    fn default() -> Self {
        GcPolicy {
            watermark: 2.0,
            min_interval: 1 << 16,
        }
    }
}

impl GcPolicy {
    /// Collects at every opportunity — maximal reclamation, maximal
    /// overhead. Intended for tests and for measuring GC cost.
    pub fn aggressive() -> Self {
        GcPolicy {
            watermark: 1.0,
            min_interval: 0,
        }
    }
}

/// Token returned by [`TddManager::pin`]: the root ids of a set of holders
/// kept alive across a multi-collection region. Spend it with
/// [`TddManager::unpin`] — dropping it instead leaks the roots (the edges
/// stay protected forever).
#[derive(Debug)]
#[must_use = "unpin the holders or their roots leak"]
pub struct Pins {
    /// Root ids per holder, in pin order.
    ids: Vec<Vec<RootId>>,
}

/// What one [`TddManager::collect`] call did.
#[derive(Debug)]
pub struct GcOutcome {
    /// Old-to-new node map for rewriting held edges.
    pub relocations: Relocations,
    /// Nodes swept (allocated minus surviving).
    pub reclaimed: usize,
    /// Non-terminal nodes that survived.
    pub live: usize,
    /// Operation-cache entries purged as stale.
    pub cache_entries_purged: u64,
}

/// A structure holding long-lived [`Edge`]s that can ride through a
/// collection: it can root every edge it holds and rewrite them through a
/// [`Relocations`] map afterwards.
///
/// Implemented by [`Edge`] and `Vec<Edge>` here, and by the higher-level
/// holders (subspaces, transition systems, tensor networks) in their own
/// crates. The point of the trait is [`TddManager::collect_retaining`]:
/// one call that protects every holder, collects, relocates, and releases
/// the roots — so call sites cannot forget a step of the root contract.
pub trait Relocatable {
    /// Protects every edge this holder owns, returning the root ids.
    fn gc_protect(&self, m: &mut TddManager) -> Vec<RootId>;

    /// Rewrites every held edge after a collection.
    fn gc_relocate(&mut self, r: &Relocations);

    /// Reads every held edge back from the root registry, consuming ids
    /// from `ids` in the same order [`Relocatable::gc_protect`] registered
    /// them. Registry copies are relocated in place at every collection,
    /// so this restores a holder that stayed pinned across *any number* of
    /// collections — the situation a single [`Relocations`] map cannot
    /// express. See [`TddManager::pin`].
    ///
    /// # Panics
    ///
    /// Panics if `ids` runs out of ids (protect/restore mismatch).
    fn gc_restore(&mut self, m: &TddManager, ids: &mut std::slice::Iter<'_, RootId>);
}

impl Relocatable for Edge {
    fn gc_protect(&self, m: &mut TddManager) -> Vec<RootId> {
        vec![m.protect(*self)]
    }

    fn gc_relocate(&mut self, r: &Relocations) {
        *self = r.apply(*self);
    }

    fn gc_restore(&mut self, m: &TddManager, ids: &mut std::slice::Iter<'_, RootId>) {
        let id = *ids.next().expect("gc_restore: root id underflow");
        *self = m.root_edge(id);
    }
}

impl<T: Relocatable> Relocatable for Vec<T> {
    fn gc_protect(&self, m: &mut TddManager) -> Vec<RootId> {
        self.iter().flat_map(|t| t.gc_protect(m)).collect()
    }

    fn gc_relocate(&mut self, r: &Relocations) {
        for t in self {
            t.gc_relocate(r);
        }
    }

    fn gc_restore(&mut self, m: &TddManager, ids: &mut std::slice::Iter<'_, RootId>) {
        for t in self {
            t.gc_restore(m, ids);
        }
    }
}

/// RAII guard pairing a manager borrow with a set of scoped roots.
///
/// Derefs to the [`TddManager`], so operations run through the guard; any
/// edge passed to [`RootScope::protect`] is unprotected again when the
/// guard drops. This is the intended way to hold temporaries across a
/// [`TddManager::collect`] / [`TddManager::maybe_collect`]:
///
/// ```
/// use qits_tdd::{GcPolicy, TddManager};
/// use qits_tensor::Var;
///
/// let mut m = TddManager::new();
/// let mut scope = m.root_scope();
/// let e = scope.identity(Var(0), Var(1));
/// let id = scope.protect(e);
/// let outcome = scope.collect();
/// let e = scope.root_edge(id); // relocated, still the identity tensor
/// assert_eq!(scope.node_count(e), 3);
/// drop(scope); // unprotects `e`
/// assert_eq!(m.root_count(), 0);
/// # let _ = outcome;
/// # let _ = GcPolicy::default();
/// ```
#[derive(Debug)]
pub struct RootScope<'m> {
    m: &'m mut TddManager,
    roots: Vec<RootId>,
}

impl RootScope<'_> {
    /// Protects `e` for the lifetime of this scope.
    pub fn protect(&mut self, e: Edge) -> RootId {
        let id = self.m.protect(e);
        self.roots.push(id);
        id
    }
}

impl Deref for RootScope<'_> {
    type Target = TddManager;

    fn deref(&self) -> &TddManager {
        self.m
    }
}

impl DerefMut for RootScope<'_> {
    fn deref_mut(&mut self) -> &mut TddManager {
        self.m
    }
}

impl Drop for RootScope<'_> {
    fn drop(&mut self) {
        for id in self.roots.drain(..) {
            self.m.unprotect(id);
        }
    }
}

impl TddManager {
    // ------------------------------------------------------------------
    // Root management.
    // ------------------------------------------------------------------

    /// Registers `e` as a GC root: the diagram below it survives every
    /// collection, and the registry's copy is relocated in place (read it
    /// back with [`TddManager::root_edge`]).
    pub fn protect(&mut self, e: Edge) -> RootId {
        self.roots.insert(e)
    }

    /// Releases a root. Releasing an already-released id is a no-op.
    pub fn unprotect(&mut self, id: RootId) {
        let _ = self.roots.remove(id);
    }

    /// Releases a batch of roots (the shape `Subspace::protect` returns).
    pub fn unprotect_all<I: IntoIterator<Item = RootId>>(&mut self, ids: I) {
        for id in ids {
            self.unprotect(id);
        }
    }

    /// The current (relocation-adjusted) edge behind a root.
    ///
    /// # Panics
    ///
    /// Panics if the root was released.
    pub fn root_edge(&self, id: RootId) -> Edge {
        self.roots.get(id).expect("root was released")
    }

    /// Number of live roots.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Opens an RAII scope whose roots are released when it drops.
    pub fn root_scope(&mut self) -> RootScope<'_> {
        RootScope {
            m: self,
            roots: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Policy.
    // ------------------------------------------------------------------

    /// Installs (or removes, with `None`) the automatic-collection policy
    /// consulted by [`TddManager::maybe_collect`]. `None` — the default —
    /// restores the grow-only behaviour.
    pub fn set_gc_policy(&mut self, policy: Option<GcPolicy>) {
        self.gc_policy = policy;
    }

    /// The installed automatic-collection policy, if any.
    pub fn gc_policy(&self) -> Option<GcPolicy> {
        self.gc_policy
    }

    /// Whether the installed policy asks for a collection right now.
    /// Always `false` without a policy.
    pub fn should_collect(&self) -> bool {
        match self.gc_policy {
            None => false,
            Some(p) => {
                let arena = self.nodes.len();
                let grown = arena.saturating_sub(self.gc_floor);
                grown >= p.min_interval.max(1)
                    && arena as f64 >= self.gc_floor as f64 * p.watermark.max(1.0)
            }
        }
    }

    /// Collects if (and only if) the installed policy asks for it.
    pub fn maybe_collect(&mut self) -> Option<GcOutcome> {
        if self.should_collect() {
            Some(self.collect())
        } else {
            None
        }
    }

    /// The whole root dance in one call: protects every holder, collects,
    /// relocates them all, and releases the roots.
    ///
    /// This is the intended way to run a collection at a point where a
    /// known set of structures must survive — hand-rolling the
    /// protect/collect/relocate/unprotect sequence risks forgetting a
    /// holder, which is a panic (or silent corruption) at the next use.
    pub fn collect_retaining(&mut self, holders: &mut [&mut dyn Relocatable]) -> GcOutcome {
        let mut roots = Vec::new();
        for h in holders.iter() {
            roots.extend(h.gc_protect(self));
        }
        let out = self.collect();
        for h in holders.iter_mut() {
            h.gc_relocate(&out.relocations);
        }
        self.unprotect_all(roots);
        out
    }

    /// [`TddManager::collect_retaining`] gated on the installed policy.
    pub fn maybe_collect_retaining(
        &mut self,
        holders: &mut [&mut dyn Relocatable],
    ) -> Option<GcOutcome> {
        if self.should_collect() {
            Some(self.collect_retaining(holders))
        } else {
            None
        }
    }

    /// Polls a **GC safepoint**: a point where the caller's `holders` are
    /// exactly the structures that must survive a collection. Collects
    /// (via [`TddManager::collect_retaining`]) iff the installed policy
    /// asks for it, and counts every poll and every collection in
    /// [`crate::ManagerStats::safepoints_polled`] /
    /// [`crate::ManagerStats::safepoint_collections`].
    ///
    /// This is the single entry the image-computation strategies and the
    /// fixpoint drivers call between slices, blocks, Gram–Schmidt
    /// residuals, and iterations; anything else live on the manager at a
    /// safepoint must be pinned via [`TddManager::pin`] or it is swept.
    pub fn maybe_collect_at_safepoint(
        &mut self,
        holders: &mut [&mut dyn Relocatable],
    ) -> Option<GcOutcome> {
        self.stats.safepoints_polled += 1;
        let out = self.maybe_collect_retaining(holders);
        if out.is_some() {
            self.stats.safepoint_collections += 1;
        }
        out
    }

    /// Roots every holder for an extended region that may contain **any
    /// number of collections** (e.g. an `image()` call with in-image
    /// safepoints), returning a [`Pins`] token for [`TddManager::unpin`].
    ///
    /// Unlike [`TddManager::collect_retaining`] — which brackets exactly
    /// one collection and hands back one [`Relocations`] map — pinning
    /// relies on the registry's in-place relocation: however many sweeps
    /// run, the registry's copies stay current, and `unpin` writes them
    /// back into the holders. The holders' own edges are stale (dangling
    /// after the first collection) until then and must not be used.
    pub fn pin(&mut self, holders: &mut [&mut dyn Relocatable]) -> Pins {
        Pins {
            ids: holders.iter().map(|h| h.gc_protect(self)).collect(),
        }
    }

    /// Ends a [`TddManager::pin`] region: restores every holder from the
    /// registry (in the order they were pinned) and releases the roots.
    /// If no collection ran in between, the restore is an exact no-op.
    ///
    /// # Panics
    ///
    /// Panics if `holders` differs in shape from the pinned set.
    pub fn unpin(&mut self, pins: Pins, holders: &mut [&mut dyn Relocatable]) {
        assert_eq!(
            pins.ids.len(),
            holders.len(),
            "unpin: holder count differs from pin"
        );
        for (h, ids) in holders.iter_mut().zip(&pins.ids) {
            let mut it = ids.iter();
            h.gc_restore(self, &mut it);
            assert!(it.next().is_none(), "unpin: holder consumed too few roots");
        }
        for ids in pins.ids {
            self.unprotect_all(ids);
        }
    }

    // ------------------------------------------------------------------
    // Collection.
    // ------------------------------------------------------------------

    /// Mark-and-sweep collection over the root registry.
    ///
    /// Marks every node reachable from a protected edge, compacts the
    /// arena to the survivors (renumbering them densely in creation
    /// order), rebuilds the unique table, rewrites the registry in place,
    /// advances the cache epoch (purging stale entries), and returns the
    /// [`Relocations`] map plus reclaim counters. Counters are also folded
    /// into [`crate::ManagerStats`].
    ///
    /// Every raw edge held outside the registry must be rewritten through
    /// the returned relocations before its next use; see the module docs
    /// for the full root contract.
    pub fn collect(&mut self) -> GcOutcome {
        let old_len = self.nodes.len();
        // Mark.
        let mut marked = vec![false; old_len];
        marked[TERMINAL.index()] = true;
        let mut stack: Vec<NodeId> = self
            .roots
            .iter()
            .map(|e| e.node)
            .filter(|n| !n.is_terminal())
            .collect();
        while let Some(n) = stack.pop() {
            if marked[n.index()] {
                continue;
            }
            marked[n.index()] = true;
            let node = self.nodes[n.index()];
            if !node.low.node.is_terminal() {
                stack.push(node.low.node);
            }
            if !node.high.node.is_terminal() {
                stack.push(node.high.node);
            }
        }
        // Sweep and compact. `make_node` guarantees successors are created
        // before their parent, so ascending old-id order remaps children
        // before any node that points at them.
        let mut map = vec![Relocations::DEAD; old_len];
        map[TERMINAL.index()] = TERMINAL.index() as u32;
        let old_nodes = std::mem::take(&mut self.nodes);
        self.nodes = Vec::with_capacity(old_len.min(1 << 12));
        self.nodes.push(old_nodes[TERMINAL.index()]);
        self.unique.clear();
        for (old_id, node) in old_nodes.iter().enumerate().skip(1) {
            if !marked[old_id] {
                continue;
            }
            debug_assert!(
                node.low.node.index() < old_id && node.high.node.index() < old_id,
                "arena order invariant broken: successor created after parent"
            );
            let n = Node {
                var: node.var,
                low: Edge {
                    node: NodeId::from_index(map[node.low.node.index()] as usize),
                    weight: node.low.weight,
                },
                high: Edge {
                    node: NodeId::from_index(map[node.high.node.index()] as usize),
                    weight: node.high.weight,
                },
            };
            let new_id = NodeId::from_index(self.nodes.len());
            map[old_id] = new_id.index() as u32;
            self.unique.insert(n, new_id);
            self.nodes.push(n);
        }
        let relocations = Relocations { map };
        self.roots.relocate(&relocations);
        // Invalidate the operation caches: their keys name old node ids.
        let cache_entries_purged = self.caches.on_collect();
        // Counters.
        let live = self.nodes.len() - 1;
        let reclaimed = old_len - self.nodes.len();
        self.stats.gc_runs += 1;
        self.stats.nodes_reclaimed += reclaimed as u64;
        self.stats.live_after_last_gc = live;
        self.gc_floor = self.nodes.len();
        GcOutcome {
            relocations,
            reclaimed,
            live,
            cache_entries_purged,
        }
    }

    /// Number of distinct non-terminal nodes reachable from the root
    /// registry plus `extra` — the live set a collection run right now
    /// would keep. `O(live)`; does not modify the manager.
    pub fn live_node_count(&self, extra: &[Edge]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<NodeId> = self
            .roots
            .iter()
            .chain(extra.iter().copied())
            .map(|e| e.node)
            .filter(|n| !n.is_terminal())
            .collect();
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.node(n);
            if !node.low.node.is_terminal() {
                stack.push(node.low.node);
            }
            if !node.high.node.is_terminal() {
                stack.push(node.high.node);
            }
        }
        count
    }

    /// Collections performed so far (equals the current cache epoch).
    pub fn gc_runs(&self) -> u64 {
        self.stats.gc_runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_num::Cplx;
    use qits_tensor::{Tensor, Var};

    fn sample_tensor(seed: u64) -> Tensor {
        let data: Vec<Cplx> = (0..8u64)
            .map(|i| {
                let x = (i * 7 + seed * 13 + 3) % 17;
                Cplx::new(x as f64 * 0.125 - 1.0, (x % 5) as f64 * 0.25)
            })
            .collect();
        Tensor::new(vec![Var(0), Var(1), Var(2)], data)
    }

    #[test]
    fn collect_without_roots_empties_the_arena() {
        let mut m = TddManager::new();
        let _garbage = m.from_tensor(&sample_tensor(1));
        assert!(m.arena_len() > 1);
        let out = m.collect();
        assert_eq!(m.arena_len(), 1, "only the terminal survives");
        assert_eq!(out.live, 0);
        assert!(out.reclaimed > 0);
        assert_eq!(m.stats().nodes_reclaimed, out.reclaimed as u64);
    }

    #[test]
    fn rooted_diagram_survives_and_keeps_its_tensor() {
        let mut m = TddManager::new();
        let t = sample_tensor(2);
        let e = m.from_tensor(&t);
        let before = m.to_tensor(e, &[Var(0), Var(1), Var(2)]);
        let _garbage = m.from_tensor(&sample_tensor(3));
        let id = m.protect(e);
        let out = m.collect();
        let e2 = m.root_edge(id);
        assert_eq!(out.relocations.apply(e), e2);
        let after = m.to_tensor(e2, &[Var(0), Var(1), Var(2)]);
        assert!(after.approx_eq(&before));
        assert_eq!(m.arena_len(), m.node_count(e2) + 1);
    }

    #[test]
    fn canonical_identity_survives_compaction() {
        // Rebuilding the same tensor after a collection must hash-cons to
        // exactly the relocated edge.
        let mut m = TddManager::new();
        let t = sample_tensor(4);
        let e = m.from_tensor(&t);
        let id = m.protect(e);
        m.collect();
        let relocated = m.root_edge(id);
        let rebuilt = m.from_tensor(&t);
        assert_eq!(rebuilt, relocated);
    }

    #[test]
    fn dead_edges_are_reported_dead() {
        let mut m = TddManager::new();
        let keep = m.from_tensor(&sample_tensor(5));
        let drop_ = m.from_tensor(&sample_tensor(6));
        m.protect(keep);
        let out = m.collect();
        assert!(out.relocations.try_apply(keep).is_some());
        assert!(out.relocations.try_apply(drop_).is_none());
    }

    #[test]
    #[should_panic(expected = "root-safety violation")]
    fn applying_relocations_to_dead_edge_panics() {
        let mut m = TddManager::new();
        let dead = m.from_tensor(&sample_tensor(7));
        let out = m.collect();
        let _ = out.relocations.apply(dead);
    }

    #[test]
    fn scalar_and_zero_edges_pass_through() {
        let mut m = TddManager::new();
        let s = m.constant(Cplx::new(0.5, -0.25));
        let out = m.collect();
        assert_eq!(out.relocations.apply(Edge::ZERO), Edge::ZERO);
        assert_eq!(out.relocations.apply(Edge::ONE), Edge::ONE);
        assert_eq!(out.relocations.apply(s), s); // terminal edge: unchanged
    }

    #[test]
    fn root_scope_unprotects_on_drop() {
        let mut m = TddManager::new();
        let e = m.from_tensor(&sample_tensor(8));
        {
            let mut scope = m.root_scope();
            scope.protect(e);
            assert_eq!(scope.root_count(), 1);
        }
        assert_eq!(m.root_count(), 0);
        m.collect();
        assert_eq!(m.arena_len(), 1);
    }

    #[test]
    fn unprotect_is_idempotent_and_ids_recycle() {
        let mut m = TddManager::new();
        let e = m.from_tensor(&sample_tensor(9));
        let a = m.protect(e);
        m.unprotect(a);
        m.unprotect(a); // no-op
        assert_eq!(m.root_count(), 0);
        let b = m.protect(e);
        assert_eq!(m.root_count(), 1);
        assert_eq!(m.root_edge(b), e);
    }

    #[test]
    fn collection_purges_operation_caches() {
        let mut m = TddManager::new();
        let a = m.from_tensor(&sample_tensor(10));
        let b = m.from_tensor(&sample_tensor(11));
        let r = m.add(a, b);
        assert!(m.cache_sizes().total() > 0);
        m.protect(a);
        m.protect(b);
        m.protect(r);
        let out = m.collect();
        assert!(out.cache_entries_purged > 0);
        assert_eq!(m.cache_sizes().total(), 0, "stale entries must be gone");
        // The purge is visible in the lifetime counters.
        assert!(m.stats().add_cache.purged > 0);
    }

    #[test]
    fn operations_recompute_correctly_after_collection() {
        let (ta, tb) = (sample_tensor(12), sample_tensor(13));
        let mut m = TddManager::new();
        let a = m.from_tensor(&ta);
        let b = m.from_tensor(&tb);
        let sum_before = m.add(a, b);
        let ia = m.protect(a);
        let ib = m.protect(b);
        let is = m.protect(sum_before);
        m.collect();
        let (a2, b2, s2) = (m.root_edge(ia), m.root_edge(ib), m.root_edge(is));
        let sum_after = m.add(a2, b2);
        assert_eq!(sum_after, s2, "post-GC addition must re-canonicalise");
        let vars = [Var(0), Var(1), Var(2)];
        assert!(m.to_tensor(sum_after, &vars).approx_eq(&ta.add(&tb)));
    }

    #[test]
    fn policy_watermark_and_interval_gate_collection() {
        let mut m = TddManager::new();
        assert!(!m.should_collect(), "no policy: never collect");
        m.set_gc_policy(Some(GcPolicy {
            watermark: 1.0,
            min_interval: 1 << 20,
        }));
        let _ = m.from_tensor(&sample_tensor(14));
        assert!(!m.should_collect(), "min_interval not reached");
        m.set_gc_policy(Some(GcPolicy::aggressive()));
        assert!(m.should_collect());
        let out = m.maybe_collect().expect("aggressive policy collects");
        assert!(out.reclaimed > 0);
        assert!(!m.should_collect(), "arena is clean right after a collect");
        assert!(m.maybe_collect().is_none());
    }

    #[test]
    fn collect_retaining_runs_the_whole_root_dance() {
        let mut m = TddManager::new();
        let t = sample_tensor(20);
        let mut keep = m.from_tensor(&t);
        let mut kept_many = vec![m.from_tensor(&sample_tensor(21))];
        let _garbage = m.from_tensor(&sample_tensor(22));
        let out = m.collect_retaining(&mut [&mut keep, &mut kept_many]);
        assert!(out.reclaimed > 0);
        assert_eq!(m.root_count(), 0, "roots must be released afterwards");
        // Both holders were relocated in place and still denote their
        // tensors.
        assert!(m.to_tensor(keep, &[Var(0), Var(1), Var(2)]).approx_eq(&t));
        assert_eq!(m.arena_len(), m.live_node_count(&[keep, kept_many[0]]) + 1);
    }

    #[test]
    fn pin_unpin_survives_multiple_collections() {
        // A single Relocations map cannot carry a holder across two
        // sweeps; pin/unpin can, because the registry's copies are
        // relocated in place at every collection.
        let mut m = TddManager::new();
        let t = sample_tensor(30);
        let mut keep = m.from_tensor(&t);
        let mut nested = vec![m.from_tensor(&sample_tensor(31))];
        let mut pinned: Vec<&mut dyn Relocatable> = vec![&mut keep, &mut nested];
        let pins = m.pin(&mut pinned);
        let _g1 = m.from_tensor(&sample_tensor(32));
        m.collect();
        let _g2 = m.from_tensor(&sample_tensor(33));
        m.collect();
        m.unpin(pins, &mut pinned);
        assert_eq!(m.root_count(), 0, "unpin must release every root");
        let vars = [Var(0), Var(1), Var(2)];
        assert!(m.to_tensor(keep, &vars).approx_eq(&t));
        assert!(m.to_tensor(nested[0], &vars).approx_eq(&sample_tensor(31)));
    }

    #[test]
    fn unpin_without_collection_is_identity() {
        let mut m = TddManager::new();
        let original = m.from_tensor(&sample_tensor(34));
        let mut e = original;
        let mut pinned: Vec<&mut dyn Relocatable> = vec![&mut e];
        let pins = m.pin(&mut pinned);
        m.unpin(pins, &mut pinned);
        assert_eq!(e, original);
        assert_eq!(m.root_count(), 0);
    }

    #[test]
    fn safepoint_counters_track_polls_and_collections() {
        let mut m = TddManager::new();
        let t = sample_tensor(35);
        let mut e = m.from_tensor(&t);
        // No policy: the poll is counted, nothing collects.
        assert!(m.maybe_collect_at_safepoint(&mut [&mut e]).is_none());
        assert_eq!(m.stats().safepoints_polled, 1);
        assert_eq!(m.stats().safepoint_collections, 0);
        // Aggressive policy: the next poll collects and retains `e`.
        let _garbage = m.from_tensor(&sample_tensor(36));
        m.set_gc_policy(Some(GcPolicy::aggressive()));
        let out = m.maybe_collect_at_safepoint(&mut [&mut e]);
        assert!(out.expect("must collect").reclaimed > 0);
        assert_eq!(m.stats().safepoints_polled, 2);
        assert_eq!(m.stats().safepoint_collections, 1);
        assert!(m.to_tensor(e, &[Var(0), Var(1), Var(2)]).approx_eq(&t));
        // The counters diff like any other ManagerStats counter.
        let snap = m.stats();
        let _ = m.maybe_collect_at_safepoint(&mut [&mut e]);
        let moved = m.stats().since(&snap);
        assert_eq!(moved.safepoints_polled, 1);
    }

    #[test]
    fn live_node_count_tracks_roots_and_extras() {
        let mut m = TddManager::new();
        let a = m.from_tensor(&sample_tensor(15));
        let b = m.from_tensor(&sample_tensor(16));
        assert_eq!(m.live_node_count(&[]), 0);
        m.protect(a);
        assert_eq!(m.live_node_count(&[]), m.node_count(a));
        let both = m.live_node_count(&[b]);
        assert!(both >= m.node_count(a).max(m.node_count(b)));
        assert!(both <= m.node_count(a) + m.node_count(b));
    }

    #[test]
    fn gc_runs_counts_collections() {
        let mut m = TddManager::new();
        assert_eq!(m.gc_runs(), 0);
        m.collect();
        m.collect();
        assert_eq!(m.gc_runs(), 2);
        assert_eq!(m.stats().gc_runs, 2);
    }
}
