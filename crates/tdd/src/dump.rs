//! Manager-neutral TDD dumps: the serialization boundary of the crate.
//!
//! A [`TddDump`] is a self-contained, topologically-ordered description of
//! a family of diagrams: every node lists its variable and two successor
//! edges, successors always refer to **earlier** dump entries (or the
//! terminal), and edge weights are plain [`Cplx`] values — no [`crate::CIdx`]
//! handles, no generational [`crate::NodeId`]s, nothing that is only
//! meaningful relative to one manager's tables. That makes a dump the right
//! interchange form for persistence: `qits-store` encodes it byte-for-byte,
//! and any manager can re-intern it.
//!
//! Loading goes through [`TddManager::make_node`], so a loaded diagram obeys
//! the destination's canonical invariants (reduction, weight normalisation,
//! tolerance snapping) no matter how the dump was produced. Like
//! [`TddManager::import`], loading is **order-aware**: a dump produced under
//! a sifted variable order loads correctly into a manager with a different
//! (or natural) order, by Shannon-expanding any successor whose root does
//! not sit below the node's variable in the destination order.

use qits_num::Cplx;
use qits_tensor::Var;

use crate::hash::FastMap;
use crate::manager::TddManager;
use crate::node::{Edge, NodeId, TERMINAL};

/// One serialized edge: a target node plus the resolved complex weight.
///
/// `target` is `0` for the terminal, otherwise `i + 1` where `i` indexes
/// [`TddDump::nodes`]. Successor edges of node `i` may only target the
/// terminal or nodes `0..i` (children precede parents); [`TddManager::
/// load_dump`] rejects anything else with [`DumpError::NodeOutOfRange`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumpEdge {
    /// `0` = terminal; otherwise 1-based index into [`TddDump::nodes`].
    pub target: u32,
    /// The edge weight as a plain complex value.
    pub weight: Cplx,
}

/// One serialized internal node: a variable and its two successor edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumpNode {
    /// The branching variable.
    pub var: Var,
    /// The low (index = 0) successor.
    pub low: DumpEdge,
    /// The high (index = 1) successor.
    pub high: DumpEdge,
}

/// A manager-neutral dump of one or more diagrams (see the module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TddDump {
    /// The weight tolerance of the dumping manager (informational: loading
    /// snaps weights under the *destination's* tolerance).
    pub tolerance: f64,
    /// The dumping manager's explicit variable order (level 0 first), or
    /// `None` if it was still in natural mode. [`TddManager::load_dump`]
    /// installs this on a fresh manager so a round trip is structurally
    /// identical, and Shannon-expands on mismatch otherwise.
    pub order: Option<Vec<Var>>,
    /// Topologically ordered nodes: successors precede their parents.
    pub nodes: Vec<DumpNode>,
    /// The dumped root edges, in the order they were passed to
    /// [`TddManager::dump`].
    pub roots: Vec<DumpEdge>,
}

impl TddDump {
    /// Total number of internal nodes in the dump.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// A structurally invalid [`TddDump`], reported by [`TddManager::load_dump`]
/// instead of panicking — the dump may come from a corrupted or adversarial
/// file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpError {
    /// A successor or root edge targets a node at or beyond the position it
    /// may legally reference (children must precede parents).
    NodeOutOfRange {
        /// Index of the offending entry: the referring node's position in
        /// [`TddDump::nodes`], or `nodes.len()` for a root edge.
        index: usize,
        /// The out-of-range 1-based target.
        target: u32,
    },
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpError::NodeOutOfRange { index, target } => write!(
                f,
                "dump entry {index} references node {target} out of range \
                 (children must precede parents)"
            ),
        }
    }
}

impl std::error::Error for DumpError {}

impl TddManager {
    /// Dumps the diagrams rooted at `roots` into a manager-neutral
    /// [`TddDump`]: a topological node list (children first) with all
    /// weights resolved to plain complex values, plus the current variable
    /// order. Shared subdiagrams are emitted once.
    ///
    /// The dump is deterministic: the node order is the depth-first
    /// postorder of the roots as given.
    pub fn dump(&self, roots: &[Edge]) -> TddDump {
        // `index[n]` = 1-based position of node `n` in the emitted list.
        let mut index: FastMap<NodeId, u32> = FastMap::default();
        let mut nodes: Vec<DumpNode> = Vec::new();
        // Iterative postorder: (node, successors already pushed).
        let mut stack: Vec<(NodeId, bool)> = Vec::new();
        for e in roots {
            if !e.is_zero() && !e.is_terminal() {
                stack.push((e.node, false));
            }
            while let Some((n, expanded)) = stack.pop() {
                if index.contains_key(&n) {
                    continue;
                }
                let node = *self.node(n);
                if expanded {
                    let emit = |e: Edge, index: &FastMap<NodeId, u32>| DumpEdge {
                        target: if e.is_zero() || e.is_terminal() {
                            0
                        } else {
                            index[&e.node]
                        },
                        weight: self.weight_value(e.weight),
                    };
                    let low = emit(node.low, &index);
                    let high = emit(node.high, &index);
                    nodes.push(DumpNode {
                        var: node.var,
                        low,
                        high,
                    });
                    index.insert(n, nodes.len() as u32);
                } else {
                    stack.push((n, true));
                    for succ in [node.high, node.low] {
                        if !succ.is_zero() && !succ.is_terminal() && !index.contains_key(&succ.node)
                        {
                            stack.push((succ.node, false));
                        }
                    }
                }
            }
        }
        let root_edges = roots
            .iter()
            .map(|e| DumpEdge {
                target: if e.is_zero() || e.is_terminal() {
                    0
                } else {
                    index[&e.node]
                },
                weight: self.weight_value(e.weight),
            })
            .collect();
        TddDump {
            tolerance: self.tolerance(),
            order: self.var_order().map(<[Var]>::to_vec),
            nodes,
            roots: root_edges,
        }
    }

    /// Rebuilds the dumped diagrams in this manager, returning one edge per
    /// dump root (same order). Weights are re-interned under this manager's
    /// tolerance and every node goes through [`TddManager::make_node`], so
    /// the results are canonical here — loading the same dump twice returns
    /// identical edges.
    ///
    /// On a **fresh** manager (empty node store, no explicit order) the
    /// dump's variable order is installed first, making a dump → load round
    /// trip structurally identical to the original. Otherwise the existing
    /// order wins and mismatches are resolved by Shannon expansion, exactly
    /// like [`TddManager::import`] across managers.
    ///
    /// # Errors
    ///
    /// [`DumpError::NodeOutOfRange`] if any edge references a node that
    /// does not precede it — the dump is malformed (e.g. a corrupted or
    /// truncated file) and nothing is loaded beyond the valid prefix.
    ///
    /// # Panics
    ///
    /// Unwinds with [`crate::ArenaExhausted`] if the node store's capacity
    /// is hit, like every constructor.
    pub fn load_dump(&mut self, dump: &TddDump) -> Result<Vec<Edge>, DumpError> {
        if self.arena_occupied() == 0 && self.var_order().is_none() {
            if let Some(order) = &dump.order {
                self.install_order(order);
            }
        }
        let mut built: Vec<Edge> = Vec::with_capacity(dump.nodes.len());
        let mut branch_memo: FastMap<(Var, Edge, Edge), Edge> = FastMap::default();
        for (i, n) in dump.nodes.iter().enumerate() {
            let low = self.resolve_dump_edge(&n.low, &built, i)?;
            let high = self.resolve_dump_edge(&n.high, &built, i)?;
            let e = self.branch(n.var, low, high, &mut branch_memo);
            built.push(e);
        }
        dump.roots
            .iter()
            .map(|de| self.resolve_dump_edge(de, &built, dump.nodes.len()))
            .collect()
    }

    /// Resolves one dump edge against the already-rebuilt prefix `built`
    /// (entries `0..limit` are referenceable), re-interning its weight.
    fn resolve_dump_edge(
        &mut self,
        de: &DumpEdge,
        built: &[Edge],
        limit: usize,
    ) -> Result<Edge, DumpError> {
        let w = self.intern(de.weight);
        if w.is_zero() {
            return Ok(Edge::ZERO);
        }
        if de.target == 0 {
            return Ok(Edge {
                node: TERMINAL,
                weight: w,
            });
        }
        let idx = de.target as usize - 1;
        if idx >= limit {
            return Err(DumpError::NodeOutOfRange {
                index: limit,
                target: de.target,
            });
        }
        Ok(self.mul_weight(built[idx], w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_tensor::Tensor;

    fn sample_tensor() -> Tensor {
        Tensor::new(
            vec![Var(0), Var(1), Var(2)],
            (0..8)
                .map(|i| Cplx::new(i as f64 * 0.25 - 1.0, (i % 3) as f64 * 0.5))
                .collect(),
        )
    }

    #[test]
    fn dump_load_round_trip_preserves_values() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        let dump = src.dump(&[e]);
        assert_eq!(dump.node_count(), src.node_count(e));
        let mut dst = TddManager::new();
        let roots = dst.load_dump(&dump).expect("well-formed dump");
        assert_eq!(roots.len(), 1);
        assert!(dst
            .to_tensor(roots[0], &[Var(0), Var(1), Var(2)])
            .approx_eq(&t));
    }

    #[test]
    fn load_is_canonical_in_destination() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        let dump = src.dump(&[e]);
        let mut dst = TddManager::new();
        let a = dst.load_dump(&dump).unwrap()[0];
        let b = dst.load_dump(&dump).unwrap()[0];
        assert_eq!(a, b, "loading twice must hash-cons");
        assert_eq!(a, dst.from_tensor(&t), "loaded == natively built");
    }

    #[test]
    fn fresh_manager_round_trip_is_structurally_identical() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        src.install_order(&[Var(2), Var(0), Var(1)]);
        let e = src.from_tensor(&t);
        let dump = src.dump(&[e]);
        assert_eq!(dump.order.as_deref(), Some(&[Var(2), Var(0), Var(1)][..]));
        let mut dst = TddManager::new();
        let r = dst.load_dump(&dump).unwrap()[0];
        // The order was installed, so the reload is node-for-node the same
        // shape: equal node counts and a bit-identical re-dump.
        assert_eq!(dst.var_order(), Some(&[Var(2), Var(0), Var(1)][..]));
        assert_eq!(dst.node_count(r), src.node_count(e));
        assert_eq!(dst.dump(&[r]), dump);
    }

    #[test]
    fn load_across_mismatched_orders_shannon_expands() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        src.install_order(&[Var(2), Var(1), Var(0)]);
        let e = src.from_tensor(&t);
        let dump = src.dump(&[e]);
        // Destination already holds nodes under the natural order: the
        // dumped order must NOT be installed; expansion reconciles.
        let mut dst = TddManager::new();
        let pre = dst.from_tensor(&sample_tensor());
        let r = dst.load_dump(&dump).unwrap()[0];
        assert!(dst.var_order().is_none());
        assert!(dst.to_tensor(r, &[Var(0), Var(1), Var(2)]).approx_eq(&t));
        assert_eq!(r, pre, "same tensor must hash-cons to the same edge");
    }

    #[test]
    fn dump_from_a_sifted_source_loads() {
        let t = sample_tensor();
        let mut src = TddManager::new();
        let e = src.from_tensor(&t);
        src.swap_adjacent_levels(0);
        src.swap_adjacent_levels(1);
        let dump = src.dump(&[e]);
        let mut dst = TddManager::new();
        let r = dst.load_dump(&dump).unwrap()[0];
        assert!(dst.to_tensor(r, &[Var(0), Var(1), Var(2)]).approx_eq(&t));
    }

    #[test]
    fn shared_subdiagrams_dump_once() {
        let mut m = TddManager::new();
        let a = m.from_tensor(&sample_tensor());
        let b = m.scale(a, Cplx::new(0.0, 2.0));
        let dump = m.dump(&[a, b]);
        // b is a scaled alias of a's node: one shared node set, two roots.
        assert_eq!(dump.roots.len(), 2);
        assert_eq!(dump.node_count(), m.node_count(a));
        let mut dst = TddManager::new();
        let roots = dst.load_dump(&dump).unwrap();
        assert_eq!(roots[0].node, roots[1].node);
    }

    #[test]
    fn zero_and_scalar_roots_round_trip() {
        let mut m = TddManager::new();
        let s = m.constant(Cplx::new(0.5, -0.25));
        let dump = m.dump(&[Edge::ZERO, s, Edge::ONE]);
        assert_eq!(dump.node_count(), 0);
        let mut dst = TddManager::new();
        let roots = dst.load_dump(&dump).unwrap();
        assert_eq!(roots[0], Edge::ZERO);
        assert!(dst
            .weight_value(roots[1].weight)
            .approx_eq(Cplx::new(0.5, -0.25)));
        assert_eq!(roots[2], Edge::ONE);
    }

    #[test]
    fn forward_references_are_rejected_not_loaded() {
        let dump = TddDump {
            tolerance: 1e-10,
            order: None,
            nodes: vec![DumpNode {
                var: Var(0),
                low: DumpEdge {
                    target: 1, // self-reference: node 0 targeting entry 1
                    weight: Cplx::ONE,
                },
                high: DumpEdge {
                    target: 0,
                    weight: Cplx::ONE,
                },
            }],
            roots: vec![DumpEdge {
                target: 1,
                weight: Cplx::ONE,
            }],
        };
        let mut m = TddManager::new();
        let err = m.load_dump(&dump).unwrap_err();
        assert_eq!(
            err,
            DumpError::NodeOutOfRange {
                index: 0,
                target: 1
            }
        );
    }

    #[test]
    fn root_out_of_range_is_rejected() {
        let dump = TddDump {
            tolerance: 1e-10,
            order: None,
            nodes: Vec::new(),
            roots: vec![DumpEdge {
                target: 7,
                weight: Cplx::ONE,
            }],
        };
        let mut m = TddManager::new();
        let err = m.load_dump(&dump).unwrap_err();
        assert_eq!(
            err,
            DumpError::NodeOutOfRange {
                index: 0,
                target: 7
            }
        );
    }

    #[test]
    fn empty_dump_loads_to_nothing() {
        let mut m = TddManager::new();
        let roots = m.load_dump(&TddDump::default()).unwrap();
        assert!(roots.is_empty());
    }
}
