//! Tensor operations on TDDs: addition, contraction, slicing, conjugation,
//! scaling, renaming, and inner products.

use std::collections::BTreeMap;

use qits_num::Cplx;
use qits_tensor::Var;

use crate::cache::SumId;
use crate::cnum::CIdx;
use crate::manager::TddManager;
use crate::node::Edge;

impl TddManager {
    // ------------------------------------------------------------------
    // Addition.
    // ------------------------------------------------------------------

    /// Point-wise sum of two tensors.
    ///
    /// Operands may have different supports; a variable absent from one
    /// operand is treated as a variable the tensor does not depend on
    /// (standard reduced-diagram semantics).
    pub fn add(&mut self, a: Edge, b: Edge) -> Edge {
        self.stats.add_calls += 1;
        self.add_rec(a, b)
    }

    fn add_rec(&mut self, a: Edge, b: Edge) -> Edge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node == b.node {
            let w = self.cadd(a.weight, b.weight);
            return if w.is_zero() {
                Edge::ZERO
            } else {
                a.with_weight(w)
            };
        }
        // Commutative: canonicalise operand order for the cache.
        let (a, b) = if (a.node, a.weight) <= (b.node, b.weight) {
            (a, b)
        } else {
            (b, a)
        };
        // Factor the first weight out: a + b = wa * (A + (wb/wa) B).
        let beta = self.cdiv(b.weight, a.weight);
        if beta.is_zero() {
            // b is negligible relative to a at the working tolerance.
            return a;
        }
        let ka = a.with_weight(CIdx::ONE);
        let kb = b.with_weight(beta);
        if let Some(r) = self.cache_get_add(&(ka, kb)) {
            return self.mul_weight(r, a.weight);
        }
        let va = self.var_of(a.node);
        let vb = self.var_of(b.node);
        // Branch on the variable whose level is shallower in the global
        // order (the terminal sentinel maps below everything).
        let x = if self.level_of(va) <= self.level_of(vb) {
            va
        } else {
            vb
        };
        let (a0, a1) = self.cofactors(ka, x);
        let (b0, b1) = self.cofactors(kb, x);
        let lo = self.add_rec(a0, b0);
        let hi = self.add_rec(a1, b1);
        let r = self.make_node(x, lo, hi);
        self.caches.add.insert((ka, kb), r);
        self.mul_weight(r, a.weight)
    }

    /// Sums an iterator of tensors (`0` for an empty iterator).
    pub fn add_many<I: IntoIterator<Item = Edge>>(&mut self, edges: I) -> Edge {
        edges
            .into_iter()
            .fold(Edge::ZERO, |acc, e| self.add(acc, e))
    }

    /// Point-wise difference `a - b`.
    pub fn sub(&mut self, a: Edge, b: Edge) -> Edge {
        let nb = self.scale(b, Cplx::NEG_ONE);
        self.add(a, nb)
    }

    // ------------------------------------------------------------------
    // Contraction.
    // ------------------------------------------------------------------

    /// Contracts two tensors, summing over the sorted variable list `sum`.
    ///
    /// This is the `cont` operation of the paper: the result's indices are
    /// `(vars(a) U vars(b)) \ sum`. A summation variable that appears in
    /// *neither* operand multiplies the result by 2 (both assignments
    /// contribute equally) — callers pass the full list of bond indices and
    /// the algorithm handles diagrams that have reduced them away.
    ///
    /// A variable shared by both operands but **not** listed in `sum` is
    /// combined element-wise, which is exactly the hyper-edge semantics the
    /// tensor-network layer relies on for diagonal gates and control legs.
    ///
    /// # Panics
    ///
    /// Panics if `sum` is not strictly ascending.
    pub fn contract(&mut self, a: Edge, b: Edge, sum: &[Var]) -> Edge {
        assert!(
            sum.windows(2).all(|w| w[0] < w[1]),
            "summation variables must be strictly ascending"
        );
        self.stats.cont_calls += 1;
        // The recursion consumes summation variables top-down in the
        // *global level* order, which can differ from the natural order
        // the public convention uses once a custom order is installed.
        let sorted;
        let sum: &[Var] = if self.order.is_natural() {
            sum
        } else {
            let mut keyed: Vec<(u32, Var)> = sum.iter().map(|&v| (self.level_of(v), v)).collect();
            keyed.sort_unstable();
            sorted = keyed.into_iter().map(|(_, v)| v).collect::<Vec<Var>>();
            &sorted
        };
        // Intern every suffix of the summation list: the manager-owned
        // contraction cache keys on `(nodes, remaining-suffix id)`, which
        // is stable across top-level calls — entries written while
        // contracting one basis state (or one Kraus branch) are hit again
        // by every later contraction that reaches the same sub-diagrams
        // with the same remaining summation variables.
        let suffixes = self.caches.sums.suffix_ids(sum);
        self.cont_rec(a, b, sum, 0, &suffixes)
    }

    fn cont_rec(&mut self, a: Edge, b: Edge, sum: &[Var], si: usize, suffixes: &[SumId]) -> Edge {
        if a.is_zero() || b.is_zero() {
            return Edge::ZERO;
        }
        let w = self.cmul(a.weight, b.weight);
        if w.is_zero() {
            return Edge::ZERO;
        }
        if a.is_terminal() && b.is_terminal() {
            // Every remaining summation variable doubles the scalar.
            let remaining = (sum.len() - si) as i32;
            let v = self.weight_value(w).scale(2f64.powi(remaining));
            return self.constant(v);
        }
        // Weight-normalized key: both weights are factored into `w`, so one
        // entry serves every scalar multiple of this operand pair.
        let key = (a.node, b.node, suffixes[si]);
        if let Some(r) = self.cache_get_cont(&key) {
            return self.mul_weight(r, w);
        }
        let ka = a.with_weight(CIdx::ONE);
        let kb = b.with_weight(CIdx::ONE);
        let va = self.var_of(a.node);
        let vb = self.var_of(b.node);
        let (la, lb) = (self.level_of(va), self.level_of(vb));
        let (x, lx) = if la <= lb { (va, la) } else { (vb, lb) };
        let r = if si < sum.len() && self.level_of(sum[si]) <= lx {
            let sv = sum[si];
            if self.level_of(sv) < lx {
                // Summation variable absent from both operands: factor 2.
                let inner = self.cont_rec(ka, kb, sum, si + 1, suffixes);
                self.scale(inner, Cplx::real(2.0))
            } else {
                // sv == x: sum the two cofactor contractions.
                let (a0, a1) = self.cofactors(ka, x);
                let (b0, b1) = self.cofactors(kb, x);
                let r0 = self.cont_rec(a0, b0, sum, si + 1, suffixes);
                let r1 = self.cont_rec(a1, b1, sum, si + 1, suffixes);
                self.add(r0, r1)
            }
        } else {
            // Free variable: branch on it.
            let (a0, a1) = self.cofactors(ka, x);
            let (b0, b1) = self.cofactors(kb, x);
            let r0 = self.cont_rec(a0, b0, sum, si, suffixes);
            let r1 = self.cont_rec(a1, b1, sum, si, suffixes);
            self.make_node(x, r0, r1)
        };
        self.caches.cont.insert(key, r);
        self.mul_weight(r, w)
    }

    // ------------------------------------------------------------------
    // Slicing, scaling, conjugation, renaming.
    // ------------------------------------------------------------------

    /// Fixes `var = value`, removing `var` from the tensor's indices.
    ///
    /// Slicing a diagram that does not depend on `var` returns it unchanged.
    pub fn slice(&mut self, e: Edge, var: Var, value: bool) -> Edge {
        self.stats.slice_calls += 1;
        self.slice_rec(e, var, value)
    }

    fn slice_rec(&mut self, e: Edge, var: Var, value: bool) -> Edge {
        if e.is_zero() || e.is_terminal() {
            return e;
        }
        let lv = self.level_of(var);
        if self.level_of_node(e.node) > lv {
            return e;
        }
        let key = (e.node, var, value);
        if let Some(r) = self.cache_get_slice(&key) {
            return self.mul_weight(r, e.weight);
        }
        let n = *self.node(e.node);
        let r = if n.var == var {
            if value {
                n.high
            } else {
                n.low
            }
        } else {
            let lo = self.slice_rec(n.low, var, value);
            let hi = self.slice_rec(n.high, var, value);
            self.make_node(n.var, lo, hi)
        };
        self.caches.slice.insert(key, r);
        self.mul_weight(r, e.weight)
    }

    /// Multiplies the whole tensor by the scalar `c`.
    pub fn scale(&mut self, e: Edge, c: Cplx) -> Edge {
        let w = self.intern(c);
        self.mul_weight(e, w)
    }

    /// Complex-conjugates every entry (used to form bras from kets).
    pub fn conj(&mut self, e: Edge) -> Edge {
        self.stats.conj_calls += 1;
        self.conj_rec(e)
    }

    fn conj_rec(&mut self, e: Edge) -> Edge {
        if e.is_zero() {
            return Edge::ZERO;
        }
        let w = self.cconj(e.weight);
        if e.is_terminal() {
            return Edge::ZERO.with_weight(w);
        }
        if let Some(r) = self.cache_get_conj(&e.node) {
            return self.mul_weight(r, w);
        }
        let n = *self.node(e.node);
        let lo = self.conj_rec(n.low);
        let hi = self.conj_rec(n.high);
        let r = self.make_node(n.var, lo, hi);
        self.caches.conj.insert(e.node, r);
        self.mul_weight(r, w)
    }

    /// Renames variables according to `map` (old -> new), which must be
    /// **monotone**: if `u < v` then `map(u) < map(v)` for all variables the
    /// diagram depends on (identity outside the map). Under the natural
    /// variable order a monotone renaming preserves canonical structure,
    /// so this is a relabelling pass; under a custom level order the
    /// renamed variables may land anywhere, and the diagram is rebuilt
    /// through selector products instead (same canonical result).
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the renaming violates the natural order.
    pub fn rename_monotone(&mut self, e: Edge, map: &BTreeMap<Var, Var>) -> Edge {
        debug_assert!(
            map.iter()
                .collect::<Vec<_>>()
                .windows(2)
                .all(|w| w[0].1 < w[1].1),
            "renaming must be monotone"
        );
        self.stats.rename_calls += 1;
        // BTreeMap iteration is ascending, so the pair list is already a
        // canonical form for interning.
        let pairs: Vec<(Var, Var)> = map.iter().map(|(&o, &n)| (o, n)).collect();
        let map_id = self.caches.renames.intern(pairs);
        if self.order.is_natural() {
            self.rename_rec(e, map, map_id)
        } else {
            self.rename_rebuild_rec(e, map, map_id)
        }
    }

    fn rename_rec(
        &mut self,
        e: Edge,
        map: &BTreeMap<Var, Var>,
        map_id: crate::cache::RenameId,
    ) -> Edge {
        if e.is_zero() || e.is_terminal() {
            return e;
        }
        let key = (e.node, map_id);
        if let Some(r) = self.cache_get_rename(&key) {
            return self.mul_weight(r, e.weight);
        }
        let n = *self.node(e.node);
        let lo = self.rename_rec(n.low, map, map_id);
        let hi = self.rename_rec(n.high, map, map_id);
        let nv = map.get(&n.var).copied().unwrap_or(n.var);
        let r = self.make_node(nv, lo, hi);
        self.caches.rename.insert(key, r);
        self.mul_weight(r, e.weight)
    }

    /// Rename fallback for custom level orders: the new variable may sit
    /// at any level relative to the (already renamed) successors, so the
    /// node is recombined as `<nv=0> * lo + <nv=1> * hi` — selector
    /// products place `nv` wherever the current order requires. Shares the
    /// rename cache with the relabelling path: both produce the canonical
    /// diagram of the renamed tensor.
    fn rename_rebuild_rec(
        &mut self,
        e: Edge,
        map: &BTreeMap<Var, Var>,
        map_id: crate::cache::RenameId,
    ) -> Edge {
        if e.is_zero() || e.is_terminal() {
            return e;
        }
        let key = (e.node, map_id);
        if let Some(r) = self.cache_get_rename(&key) {
            return self.mul_weight(r, e.weight);
        }
        let n = *self.node(e.node);
        let lo = self.rename_rebuild_rec(n.low, map, map_id);
        let hi = self.rename_rebuild_rec(n.high, map, map_id);
        let nv = map.get(&n.var).copied().unwrap_or(n.var);
        let s0 = self.selector(nv, false);
        let s1 = self.selector(nv, true);
        let p0 = self.contract(s0, lo, &[]);
        let p1 = self.contract(s1, hi, &[]);
        let r = self.add(p0, p1);
        self.caches.rename.insert(key, r);
        self.mul_weight(r, e.weight)
    }

    // ------------------------------------------------------------------
    // Inner products.
    // ------------------------------------------------------------------

    /// Hermitian inner product `<a|b>` over the explicit variable list
    /// `vars` (conjugate-linear in `a`).
    ///
    /// The variable list must cover the supports of both operands *and* any
    /// reduced-away qubit variables: a product state like `|+...+>` reduces
    /// to a bare scalar edge, and only the variable list tells the
    /// contraction how many factors of 2 that hides.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is not strictly ascending or misses a support
    /// variable of either operand.
    pub fn inner_product(&mut self, a: Edge, b: Edge, vars: &[Var]) -> Cplx {
        let ca = self.conj(a);
        let r = self.contract(ca, b, vars);
        assert!(
            r.is_terminal(),
            "inner product variable list must cover both supports"
        );
        self.weight_value(r.weight)
    }

    /// Squared norm `<e|e>` over `vars`.
    pub fn norm_sqr(&mut self, e: Edge, vars: &[Var]) -> f64 {
        self.inner_product(e, e, vars).re
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qits_num::Mat;
    use qits_tensor::{Tensor, VarSet};

    fn c(x: f64) -> Cplx {
        Cplx::real(x)
    }

    fn rand_tensor(vars: &[Var], seed: u64) -> Tensor {
        // Small deterministic pseudo-random tensor for cross-checking.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let data: Vec<Cplx> = (0..(1usize << vars.len()))
            .map(|_| Cplx::new(next(), next()))
            .collect();
        Tensor::new(vars.to_vec(), data)
    }

    #[test]
    fn add_matches_dense() {
        let mut m = TddManager::new();
        let vars = [Var(0), Var(1), Var(2)];
        let ta = rand_tensor(&vars, 1);
        let tb = rand_tensor(&vars, 2);
        let ea = m.from_tensor(&ta);
        let eb = m.from_tensor(&tb);
        let sum = m.add(ea, eb);
        let expect = ta.add(&tb);
        assert!(m.to_tensor(sum, &vars).approx_eq(&expect));
    }

    #[test]
    fn add_is_commutative_and_cancels() {
        let mut m = TddManager::new();
        let vars = [Var(0), Var(1)];
        let ta = rand_tensor(&vars, 3);
        let ea = m.from_tensor(&ta);
        let eb = m.from_tensor(&rand_tensor(&vars, 4));
        assert_eq!(m.add(ea, eb), m.add(eb, ea));
        let neg = m.scale(ea, Cplx::NEG_ONE);
        assert!(m.add(ea, neg).is_zero());
    }

    #[test]
    fn contract_matches_dense_matrix_vector() {
        let mut m = TddManager::new();
        let h = Cplx::FRAC_1_SQRT_2;
        let hm = Mat::from_rows(&[&[h, h], &[h, -h]]);
        let g = m.from_matrix(&hm, &[Var(0)], &[Var(1)]);
        let ket = m.basis_ket(&[Var(0)], &[true]);
        let out = m.contract(g, ket, &[Var(0)]);
        let expect_t = {
            let gt = Tensor::from_matrix(&hm, &[Var(0)], &[Var(1)]);
            let kt = Tensor::new(vec![Var(0)], vec![Cplx::ZERO, Cplx::ONE]);
            Tensor::contract(&gt, &kt, &VarSet::from_iter([Var(0)]))
        };
        assert!(m.to_tensor(out, &[Var(1)]).approx_eq(&expect_t));
    }

    #[test]
    fn contract_matches_dense_random() {
        let mut m = TddManager::new();
        // a over {0,1,2}, b over {1,2,3}; sum over {1,2}.
        let ta = rand_tensor(&[Var(0), Var(1), Var(2)], 7);
        let tb = rand_tensor(&[Var(1), Var(2), Var(3)], 8);
        let ea = m.from_tensor(&ta);
        let eb = m.from_tensor(&tb);
        let out = m.contract(ea, eb, &[Var(1), Var(2)]);
        let expect = Tensor::contract(&ta, &tb, &VarSet::from_iter([Var(1), Var(2)]));
        assert!(m.to_tensor(out, &[Var(0), Var(3)]).approx_eq(&expect));
    }

    #[test]
    fn contract_elementwise_shared_free_var() {
        let mut m = TddManager::new();
        let ta = rand_tensor(&[Var(0)], 9);
        let tb = rand_tensor(&[Var(0)], 10);
        let ea = m.from_tensor(&ta);
        let eb = m.from_tensor(&tb);
        let out = m.contract(ea, eb, &[]);
        let expect = Tensor::contract(&ta, &tb, &VarSet::new());
        assert!(m.to_tensor(out, &[Var(0)]).approx_eq(&expect));
    }

    #[test]
    fn contract_phantom_var_doubles() {
        let mut m = TddManager::new();
        let a = m.constant(c(3.0));
        let b = m.constant(c(5.0));
        let out = m.contract(a, b, &[Var(4)]);
        assert!(m.weight_value(out.weight).approx_eq(c(30.0)));
    }

    #[test]
    fn contract_reduced_plus_state_norm() {
        // |+>^n reduces to a scalar edge; contraction must reintroduce the
        // 2^n factor via the phantom-variable rule.
        let mut m = TddManager::new();
        let n = 5;
        let vars: Vec<Var> = (0..n).map(|i| Var::wire(i, 0)).collect();
        let amps = vec![(Cplx::FRAC_1_SQRT_2, Cplx::FRAC_1_SQRT_2); n as usize];
        let plus = m.product_ket(&vars, &amps);
        assert!(plus.is_terminal(), "uniform product state should reduce");
        let n2 = m.norm_sqr(plus, &vars);
        assert!((n2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slice_matches_dense() {
        let mut m = TddManager::new();
        let vars = [Var(0), Var(1), Var(2)];
        let t = rand_tensor(&vars, 11);
        let e = m.from_tensor(&t);
        for v in vars {
            for val in [false, true] {
                let s = m.slice(e, v, val);
                let expect = t.slice(v, val);
                let rest: Vec<Var> = vars.iter().copied().filter(|x| *x != v).collect();
                assert!(m.to_tensor(s, &rest).approx_eq(&expect));
            }
        }
    }

    #[test]
    fn slices_rejoin_via_selectors() {
        // e == sel0 * e|0  +  sel1 * e|1 (the addition-partition identity).
        let mut m = TddManager::new();
        let vars = [Var(0), Var(1)];
        let t = rand_tensor(&vars, 12);
        let e = m.from_tensor(&t);
        let s0 = m.slice(e, Var(0), false);
        let s1 = m.slice(e, Var(0), true);
        let sel0 = m.selector(Var(0), false);
        let sel1 = m.selector(Var(0), true);
        let p0 = m.contract(s0, sel0, &[]);
        let p1 = m.contract(s1, sel1, &[]);
        let back = m.add(p0, p1);
        assert_eq!(back, e);
    }

    #[test]
    fn conj_matches_dense() {
        let mut m = TddManager::new();
        let vars = [Var(0), Var(1)];
        let t = rand_tensor(&vars, 13);
        let e = m.from_tensor(&t);
        let ce = m.conj(e);
        assert!(m.to_tensor(ce, &vars).approx_eq(&t.conj()));
        // Involution.
        assert_eq!(m.conj(ce), e);
    }

    #[test]
    fn rename_monotone_relabels() {
        let mut m = TddManager::new();
        let t = rand_tensor(&[Var(0), Var(2)], 14);
        let e = m.from_tensor(&t);
        let map: BTreeMap<Var, Var> = [(Var(0), Var(1)), (Var(2), Var(5))].into();
        let r = m.rename_monotone(e, &map);
        let expect = t.rename(&map);
        assert!(m.to_tensor(r, &[Var(1), Var(5)]).approx_eq(&expect));
        // Same structure, same node count.
        assert_eq!(m.node_count(e), m.node_count(r));
    }

    #[test]
    fn inner_product_orthonormal_basis() {
        let mut m = TddManager::new();
        let vars = [Var(0), Var(1)];
        let k00 = m.basis_ket(&vars, &[false, false]);
        let k01 = m.basis_ket(&vars, &[false, true]);
        assert!(m.inner_product(k00, k00, &vars).approx_eq(Cplx::ONE));
        assert!(m.inner_product(k00, k01, &vars).approx_eq(Cplx::ZERO));
    }

    #[test]
    fn inner_product_conjugates_left() {
        let mut m = TddManager::new();
        let vars = [Var(0)];
        let a = m.product_ket(&vars, &[(Cplx::ZERO, Cplx::I)]);
        let b = m.basis_ket(&vars, &[true]);
        assert!(m.inner_product(a, b, &vars).approx_eq(-Cplx::I));
        assert!(m.inner_product(b, a, &vars).approx_eq(Cplx::I));
    }

    #[test]
    fn sub_self_is_zero() {
        let mut m = TddManager::new();
        let t = rand_tensor(&[Var(0), Var(1)], 15);
        let e = m.from_tensor(&t);
        assert!(m.sub(e, e).is_zero());
    }

    #[test]
    fn contract_gate_chain_is_matrix_product() {
        // (H on wire) twice over a 3-index chain == identity operator.
        let mut m = TddManager::new();
        let h = Cplx::FRAC_1_SQRT_2;
        let hm = Mat::from_rows(&[&[h, h], &[h, -h]]);
        let g1 = m.from_matrix(&hm, &[Var(0)], &[Var(1)]);
        let g2 = m.from_matrix(&hm, &[Var(1)], &[Var(2)]);
        let id = m.contract(g1, g2, &[Var(1)]);
        let expect = m.identity(Var(0), Var(2));
        assert_eq!(id, expect);
    }
}
