//! TDD nodes and edges.

use qits_tensor::Var;

use crate::cnum::CIdx;

/// Handle to a node in a [`crate::TddManager`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// The terminal node (the unique sink; represents the scalar 1).
pub const TERMINAL: NodeId = NodeId(0);

/// The pseudo-variable of the terminal node: larger than every real index.
pub(crate) const TERMINAL_VAR: Var = Var(u32::MAX);

impl NodeId {
    /// Whether this is the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self == TERMINAL
    }

    /// Arena slot index (used by the GC sweep and relocation maps).
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    /// Handle to an arena slot index.
    #[inline]
    pub(crate) fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("node arena overflow"))
    }
}

/// A weighted edge: the unit of every TDD operation.
///
/// The tensor denoted by an edge is `weight * tensor(node)`. The **zero
/// edge** — weight [`CIdx::ZERO`] into the terminal — is the canonical
/// representation of the all-zero tensor; managers never produce an edge
/// with zero weight into a non-terminal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Target node.
    pub node: NodeId,
    /// Interned weight multiplying the whole sub-tensor.
    pub weight: CIdx,
}

impl Edge {
    /// The canonical zero edge.
    pub const ZERO: Edge = Edge {
        node: TERMINAL,
        weight: CIdx::ZERO,
    };

    /// The canonical one edge (scalar 1).
    pub const ONE: Edge = Edge {
        node: TERMINAL,
        weight: CIdx::ONE,
    };

    /// Whether this is the zero edge (represents the zero tensor).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Whether the edge points at the terminal (a scalar).
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.node.is_terminal()
    }

    /// This edge with its weight replaced (used internally when factoring
    /// weights out of cached operations).
    #[inline]
    pub(crate) fn with_weight(self, weight: CIdx) -> Edge {
        Edge {
            node: self.node,
            weight,
        }
    }
}

/// An internal node: an index variable plus low/high successors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: Var,
    pub low: Edge,
    pub high: Edge,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_edge_is_zero() {
        assert!(Edge::ZERO.is_zero());
        assert!(!Edge::ONE.is_zero());
        assert!(Edge::ONE.is_terminal());
    }

    #[test]
    fn terminal_var_is_maximal() {
        // u32::MAX itself is reserved for the terminal sentinel.
        assert!(Var::wire(65534, 65535) < TERMINAL_VAR);
        assert!(Var::wire(65535, 65534) < TERMINAL_VAR);
    }
}
