//! TDD nodes and edges.

use qits_tensor::Var;

use crate::cnum::CIdx;

/// Generational handle to a node slot in a [`crate::TddManager`]'s backed
/// unique table.
///
/// A handle names a slot index **plus the generation the slot had when the
/// node was interned**. Garbage collection never moves a node: a sweep
/// marks the slot dead and bumps its generation, so every handle that
/// pointed at the swept node is *detectably stale* (its generation no
/// longer matches the slot's) rather than silently redirected to whatever
/// node the slot is recycled for. [`crate::TddManager::is_live`] exposes
/// the check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Slot index in the backed unique table.
    pub(crate) idx: u32,
    /// Generation of the slot at interning time.
    pub(crate) gen: u32,
}

/// The terminal node (the unique sink; represents the scalar 1).
///
/// Slot 0 is reserved for the terminal in every manager; it is never swept,
/// so its generation is 0 forever and the constant handle is always live.
pub const TERMINAL: NodeId = NodeId { idx: 0, gen: 0 };

/// The pseudo-variable of the terminal node: larger than every real index.
pub(crate) const TERMINAL_VAR: Var = Var(u32::MAX);

impl NodeId {
    /// Whether this is the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        // Slot 0 is the terminal forever and is never swept, so its
        // generation can only be 0: the index alone decides.
        self.idx == 0
    }

    /// Slot index (used by the unique table and the GC sweep).
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.idx as usize
    }
}

/// A weighted edge: the unit of every TDD operation.
///
/// The tensor denoted by an edge is `weight * tensor(node)`. The **zero
/// edge** — weight [`CIdx::ZERO`] into the terminal — is the canonical
/// representation of the all-zero tensor; managers never produce an edge
/// with zero weight into a non-terminal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Target node.
    pub node: NodeId,
    /// Interned weight multiplying the whole sub-tensor.
    pub weight: CIdx,
}

impl Edge {
    /// The canonical zero edge.
    pub const ZERO: Edge = Edge {
        node: TERMINAL,
        weight: CIdx::ZERO,
    };

    /// The canonical one edge (scalar 1).
    pub const ONE: Edge = Edge {
        node: TERMINAL,
        weight: CIdx::ONE,
    };

    /// Whether this is the zero edge (represents the zero tensor).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Whether the edge points at the terminal (a scalar).
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.node.is_terminal()
    }

    /// This edge with its weight replaced (used internally when factoring
    /// weights out of cached operations).
    #[inline]
    pub(crate) fn with_weight(self, weight: CIdx) -> Edge {
        Edge {
            node: self.node,
            weight,
        }
    }
}

/// An internal node: an index variable plus low/high successors.
///
/// Successor edges embed generational [`NodeId`]s, so node equality (the
/// unique-table key) distinguishes a child from a later node recycled into
/// the same slot: hash-consing stays sound across sweeps without ever
/// rebuilding the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: Var,
    pub low: Edge,
    pub high: Edge,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_edge_is_zero() {
        assert!(Edge::ZERO.is_zero());
        assert!(!Edge::ONE.is_zero());
        assert!(Edge::ONE.is_terminal());
    }

    #[test]
    fn terminal_var_is_maximal() {
        // u32::MAX itself is reserved for the terminal sentinel.
        assert!(Var::wire(65534, 65535) < TERMINAL_VAR);
        assert!(Var::wire(65535, 65534) < TERMINAL_VAR);
    }

    #[test]
    fn node_id_is_compact_and_generation_aware() {
        assert_eq!(std::mem::size_of::<NodeId>(), 8);
        let stale = NodeId { idx: 3, gen: 0 };
        let fresh = NodeId { idx: 3, gen: 1 };
        assert_ne!(stale, fresh, "generations distinguish recycled slots");
        assert!(!stale.is_terminal());
        assert!(TERMINAL.is_terminal());
    }
}
