//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API surface the qits benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a plain
//! mean-of-samples wall-clock measurement printed per benchmark. There are
//! no plots, no statistics beyond mean and min, and no saved baselines;
//! environments with crates.io access can substitute the real crate through
//! the workspace manifest without editing any bench.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value. A best-effort port of
/// `criterion::black_box` to stable Rust.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name and an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs closures under timing. Handed to every bench body.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling until the
    /// measurement budget or the sample count is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses at least once.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0u64;
        let budget_start = Instant::now();
        while iters < self.samples as u64 || budget_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            iters += 1;
            if iters >= self.samples as u64 && budget_start.elapsed() >= self.measurement {
                break;
            }
            // Never loop unboundedly on very fast routines.
            if iters >= 10_000 {
                break;
            }
        }
        self.result = Some(Sample {
            mean: total / u32::try_from(iters.max(1)).unwrap_or(u32::MAX),
            min,
            iters,
        });
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        routine(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id), bencher.result);
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<R>(&mut self, id: BenchmarkId, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        routine(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id), bencher.result);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// The harness entry object, one per bench binary.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(1),
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<R>(&mut self, name: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(1),
            result: None,
        };
        routine(&mut bencher);
        self.report(name, bencher.result);
        self
    }

    fn report(&mut self, label: &str, sample: Option<Sample>) {
        self.benches_run += 1;
        match sample {
            Some(s) => println!(
                "{label:<56} mean {:>12?}  min {:>12?}  ({} iters)",
                s.mean, s.min, s.iters
            ),
            None => println!("{label:<56} (no measurement: bench body never called iter)"),
        }
    }

    /// Called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {
        println!("criterion-stub: {} benchmarks measured", self.benches_run);
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
