//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy generating any value of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform strategy over the whole domain of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
