//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest, a strategy here is just a generator — there is
/// no value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Maps through `f`, regenerating whenever `f` returns `None`.
    ///
    /// `whence` names the filter in the panic raised if the rejection rate
    /// is so high that generation never succeeds.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            whence,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map '{}' rejected 10000 candidates",
            self.whence
        );
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Chooses uniformly among several strategies of the same value type.
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union; panics on an empty option list.
    pub fn new<I: IntoIterator<Item = S>>(options: I) -> Self {
        let options: Vec<S> = options.into_iter().collect();
        assert!(!options.is_empty(), "Union of no strategies");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Ranges over primitive integers and floats.
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
