//! Test-runner support types: configuration, RNG, and case failure.

use std::fmt;

/// Per-`proptest!` block configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case. Carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic xorshift64* generator seeded from the test's name, so every
/// run of a property replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
