//! Glob-import surface mirroring `proptest::prelude`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

/// Mirrors `proptest::prelude::prop` (module alias used by some suites).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
