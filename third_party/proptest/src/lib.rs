//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The qits workspace builds in environments without crates.io access, so
//! this crate reimplements exactly the slice of proptest's API the test
//! suites use: the [`proptest!`] test macro, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_filter_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Union`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: each test function derives its RNG seed from its own
//!   name, so failures are reproducible run-to-run with no persistence file.
//! * **No shrinking**: a failing case reports the case number; rerunning
//!   reaches the identical inputs.
//!
//! Swapping the real `proptest` back in (when a registry is reachable) is a
//! one-line change in the workspace manifest.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

/// Defines property-based test functions.
///
/// Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..10, v in collection::vec(0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Picks one of several strategies uniformly at random per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)*), left, right),
            ));
        }
    }};
}
