//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
